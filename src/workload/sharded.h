// Sharded-machine experiment: G independent kernel groups, each with its own
// ALPS instance, run on a sim::ShardedEngine at a configurable shard count.
//
// The headline claim this experiment proves is *shard-count invariance*: the
// group topology is fixed (group g lives on shard g % S), so every simulated
// result — share accuracy, cycle records, per-process CPU down to the
// nanosecond — must be bit-identical at S = 1, 2, 8, serial or threaded.
// The consumed_checksum field digests all of it into one number the bench
// gate can compare across points.
//
// Cross-shard traffic is real, not decorative: a "nomad" process hops group
// to group through os::ShardLink (extradite → channel → adopt), and every
// epoch each shard publishes a batched sample slice to a
// core::ShardSampleBoard that shard 0 reads at the boundary — the
// one-driver-reads-the-whole-machine pattern.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alps/cost_model.h"
#include "metrics/fairness.h"
#include "sim/shard.h"
#include "telemetry/metrics.h"
#include "util/time.h"

namespace alps::workload {

struct ShardedRunConfig {
    /// Fixed logical machine: kernel groups (one ALPS + workers each). The
    /// results are a function of this number, never of `shards`.
    unsigned groups = 8;
    /// Timing-wheel shards to spread the groups over (<= groups is useful;
    /// more is legal but idle). 1 = the serial baseline.
    unsigned shards = 1;
    sim::ShardedEngine::RunMode mode = sim::ShardedEngine::RunMode::kAuto;
    /// Compute-bound workers per group, shares cycling 1, 2, 3.
    int procs_per_group = 3;
    /// ALPS quantum == lockstep epoch, so sampling lands on boundaries.
    util::Duration quantum = util::msec(10);
    /// Cycles measured per group after warmup (cycle = quantum * group
    /// shares, the same S.Q grid as every other experiment).
    int measure_cycles = 12;
    int warmup_cycles = 3;
    /// Migrate a cross-group nomad process every `hop_period` boundaries
    /// (0 = no cross-shard process traffic). Hops are staggered one source
    /// group per boundary, which keeps the drain order S-invariant.
    int hop_period = 3;
    core::CostModel cost{};
    std::string kernel_policy = "bsd";
    std::uint64_t policy_seed = 0xa1b5'5eedULL;
    /// When set, exports sharded-engine totals ("sharded.") plus the usual
    /// engine/kernel/fairness counters here.
    telemetry::MetricsRegistry* metrics = nullptr;
};

struct ShardedRunResult {
    double mean_rms_error = 0.0;   ///< mean over groups (fraction)
    double worst_rms_error = 0.0;  ///< worst group
    /// Total ALPS driver CPU over total machine capacity (wall * groups).
    double overhead_fraction = 0.0;
    std::uint64_t cycles_completed = 0;  ///< summed over groups
    std::uint64_t ticks = 0;             ///< summed over groups
    std::uint64_t measurements = 0;      ///< summed over groups
    /// FNV-1a over every group's final per-process CPU and every measured
    /// cycle record — identical across shard counts and run modes iff the
    /// simulation is.
    std::uint64_t consumed_checksum = 0;
    std::uint64_t epochs = 0;                ///< lockstep epochs
    std::uint64_t cross_shard_messages = 0;  ///< channel deliveries
    std::uint64_t migrations_completed = 0;  ///< nomad hops that landed
    std::uint64_t events_fired = 0;          ///< summed over shard engines
    /// Machine-wide CPU seen by shard 0's boundary read of the sample
    /// board at the last boundary (the cross-shard visibility probe).
    util::Duration board_machine_cpu{0};
    util::Duration wall{0};
    bool timed_out = false;
    metrics::PerCpuFairnessReport per_group;
};

/// Builds the G-group machine on `cfg.shards` wheel shards and runs it to
/// the configured cycle count. See the file comment for the invariance
/// contract.
[[nodiscard]] ShardedRunResult run_sharded_experiment(const ShardedRunConfig& cfg);

}  // namespace alps::workload
