// A scripted ProcessControl backend for unit-testing the ALPS core without
// any kernel: the test advances each entity's CPU clock by hand (playing the
// role of the kernel scheduler) and the mock records every backend call.
// Faults can be scripted per entity: failing reads, lost or denied signals.
#pragma once

#include <map>

#include "alps/process_control.h"
#include "util/time.h"

namespace alps::testing {

class MockControl final : public core::ProcessControl {
public:
    struct Entity {
        util::Duration cpu{0};
        bool blocked = false;
        bool alive = true;
        bool suspended = false;
        int resumed_count = 0;
        int suspended_count = 0;
        // --- scripted faults (decremented as they fire; 0 = healthy) ---
        int fail_reads = 0;     ///< next N reads return ok=false
        int lose_signals = 0;   ///< next N suspend/resume report kOk, no effect
        int deny_signals = 0;   ///< next N suspend/resume return kDenied
    };

    core::Sample read_progress(core::EntityId id) override {
        ++reads;
        Entity& e = entities.at(id);
        core::Sample s;
        if (e.fail_reads > 0) {
            --e.fail_reads;
            s.ok = false;
            return s;
        }
        s.cpu_time = e.cpu;
        s.blocked = e.blocked;
        s.stopped = e.suspended;
        s.alive = e.alive;
        return s;
    }

    core::ControlResult suspend(core::EntityId id) override {
        ++suspends;
        Entity& e = entities[id];
        if (e.lose_signals > 0) {
            --e.lose_signals;
            return core::ControlResult::kOk;  // reported delivered; was not
        }
        if (e.deny_signals > 0) {
            --e.deny_signals;
            return core::ControlResult::kDenied;
        }
        if (!e.alive) return core::ControlResult::kGone;
        e.suspended = true;
        ++e.suspended_count;
        return core::ControlResult::kOk;
    }

    core::ControlResult resume(core::EntityId id) override {
        ++resumes;
        Entity& e = entities[id];
        if (e.lose_signals > 0) {
            --e.lose_signals;
            return core::ControlResult::kOk;
        }
        if (e.deny_signals > 0) {
            --e.deny_signals;
            return core::ControlResult::kDenied;
        }
        if (!e.alive) return core::ControlResult::kGone;
        e.suspended = false;
        ++e.resumed_count;
        return core::ControlResult::kOk;
    }

    /// Registers an entity the scheduler may talk about.
    Entity& ensure(core::EntityId id) { return entities[id]; }

    /// The "kernel": grants one quantum of CPU, split equally among entities
    /// that are resumed, alive, and not blocked (round-robin time-sharing on
    /// one CPU).
    void run_kernel_quantum(util::Duration quantum) {
        int active = 0;
        for (auto& [id, e] : entities) {
            if (e.alive && !e.suspended && !e.blocked) ++active;
        }
        if (active == 0) return;
        const util::Duration each{quantum.count() / active};
        for (auto& [id, e] : entities) {
            if (e.alive && !e.suspended && !e.blocked) e.cpu += each;
        }
    }

    int reads = 0;
    int suspends = 0;
    int resumes = 0;
    std::map<core::EntityId, Entity> entities;
};

}  // namespace alps::testing
