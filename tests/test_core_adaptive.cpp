// The adaptive-quantum extension: set_quantum() rescaling in the core, the
// controller's policy, and the closed loop on the simulated kernel.
#include <gtest/gtest.h>

#include <iostream>
#include <memory>

#include "alps/adaptive.h"
#include "alps/scheduler.h"
#include "alps/sim_adapter.h"
#include "mock_control.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::Duration;
using util::msec;
using util::sec;

// ----------------------------------------------------------------------------
// Scheduler::set_quantum

TEST(SetQuantum, RescalesAllowancesPreservingEntitlement) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    Scheduler sched(mc, cfg);
    sched.add(1, 2);
    sched.add(2, 4);
    // Allowances 2 and 4 ten-ms quanta = 20 ms and 40 ms of CPU entitlement.
    sched.set_quantum(msec(20));
    EXPECT_DOUBLE_EQ(sched.allowance(1), 1.0);  // still 20 ms
    EXPECT_DOUBLE_EQ(sched.allowance(2), 2.0);  // still 40 ms
    EXPECT_EQ(sched.config().quantum, msec(20));
    // The invariant sum(a_i)*Q == t_c survives.
    const double lhs = (1.0 + 2.0) * static_cast<double>(msec(20).count());
    EXPECT_NEAR(lhs, static_cast<double>(sched.cycle_time_remaining().count()), 1.0);
    // Cycle length is now denominated in the new quantum.
    EXPECT_EQ(sched.cycle_length(), msec(20) * 6);
}

TEST(SetQuantum, ProportionsSurviveAQuantumChange) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    Scheduler sched(mc, cfg);
    sched.add(1, 1);
    sched.add(2, 3);
    sched.tick();
    for (int t = 0; t < 1500; ++t) {
        mc.run_kernel_quantum(sched.config().quantum);
        sched.tick();
        if (t == 600) sched.set_quantum(msec(25));
    }
    const double c1 = static_cast<double>(mc.entities[1].cpu.count());
    const double c2 = static_cast<double>(mc.entities[2].cpu.count());
    EXPECT_NEAR(c2 / c1, 3.0, 0.15);
}

TEST(SetQuantum, SameValueIsNoOp) {
    MockControl mc;
    mc.ensure(1);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    Scheduler sched(mc, cfg);
    sched.add(1, 5);
    sched.set_quantum(msec(10));
    EXPECT_DOUBLE_EQ(sched.allowance(1), 5.0);
}

TEST(SetQuantum, NonPositiveViolatesContract) {
    MockControl mc;
    Scheduler sched(mc, {});
    EXPECT_THROW(sched.set_quantum(Duration::zero()), util::ContractViolation);
}

// ----------------------------------------------------------------------------
// AdaptiveQuantumController

TEST(AdaptiveController, OverBudgetGrowsQuantum) {
    AdaptiveQuantumConfig cfg;
    cfg.target_overhead = 0.002;
    cfg.gain = 1.0;
    AdaptiveQuantumController ctl(cfg);
    // 0.8% overhead at 10 ms with a 0.2% budget: model says 4x the quantum.
    const Duration q = ctl.update(msec(10), msec(8), sec(1));
    EXPECT_EQ(q, msec(40));
}

TEST(AdaptiveController, UnderBudgetShrinksQuantum) {
    AdaptiveQuantumConfig cfg;
    cfg.target_overhead = 0.004;
    cfg.gain = 1.0;
    AdaptiveQuantumController ctl(cfg);
    const Duration q = ctl.update(msec(40), msec(1), sec(1));  // 0.1% measured
    EXPECT_EQ(q, msec(10));
}

TEST(AdaptiveController, GainDampens) {
    AdaptiveQuantumConfig cfg;
    cfg.target_overhead = 0.002;
    cfg.gain = 0.5;
    AdaptiveQuantumController ctl(cfg);
    // 4x over budget with gain 0.5 -> sqrt(4) = 2x step.
    EXPECT_EQ(ctl.update(msec(10), msec(8), sec(1)), msec(20));
}

TEST(AdaptiveController, ClampsToRange) {
    AdaptiveQuantumConfig cfg;
    cfg.min_quantum = msec(5);
    cfg.max_quantum = msec(50);
    cfg.target_overhead = 0.002;
    cfg.gain = 1.0;
    // Fresh controller per direction: update() smooths across calls.
    AdaptiveQuantumController over(cfg);
    EXPECT_EQ(over.update(msec(10), msec(500), sec(1)), msec(50));  // way over
    AdaptiveQuantumController idle(cfg);
    EXPECT_EQ(idle.update(msec(10), Duration::zero(), sec(1)), msec(5));
}

TEST(AdaptiveController, QuantizesToGranularity) {
    AdaptiveQuantumConfig cfg;
    cfg.target_overhead = 0.002;
    cfg.gain = 1.0;
    cfg.granularity = msec(5);
    // 1.5x over budget at 10 ms -> raw 15 ms -> already on the 5 ms grid.
    AdaptiveQuantumController a(cfg);
    EXPECT_EQ(a.update(msec(10), msec(3), sec(1)), msec(15));
    // 1.2x over budget is inside the default 20% dead band: unchanged.
    AdaptiveQuantumController b(cfg);
    EXPECT_EQ(b.update(msec(10), util::usec(2400), sec(1)), msec(10));
}

TEST(AdaptiveController, SmoothingFiltersASpike) {
    AdaptiveQuantumConfig cfg;
    cfg.target_overhead = 0.002;
    cfg.gain = 1.0;
    cfg.smoothing = 0.25;
    AdaptiveQuantumController ctl(cfg);
    // Settle at the target...
    for (int i = 0; i < 10; ++i) {
        (void)ctl.update(msec(10), util::usec(2000), sec(1));
    }
    EXPECT_NEAR(ctl.smoothed_overhead(), 0.002, 1e-9);
    // ... a single 5x spike moves the EWMA only 25% of the way.
    (void)ctl.update(msec(10), msec(10), sec(1));
    EXPECT_NEAR(ctl.smoothed_overhead(), 0.75 * 0.002 + 0.25 * 0.01, 1e-9);
}

TEST(AdaptiveController, ConfigContracts) {
    AdaptiveQuantumConfig bad;
    bad.target_overhead = 0.0;
    EXPECT_THROW(AdaptiveQuantumController{bad}, util::ContractViolation);
    bad = {};
    bad.gain = 1.5;
    EXPECT_THROW(AdaptiveQuantumController{bad}, util::ContractViolation);
    bad = {};
    bad.max_quantum = msec(1);  // < min
    EXPECT_THROW(AdaptiveQuantumController{bad}, util::ContractViolation);
}

// ----------------------------------------------------------------------------
// Closed loop on the simulated kernel

TEST(AdaptiveIntegration, ConvergesToOverheadBudget) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig scfg;
    scfg.quantum = msec(10);
    SimAlps alps(kernel, scfg);
    // Equal20: the costliest workload (~0.69% overhead at 10 ms).
    for (int i = 0; i < 20; ++i) {
        const os::Pid pid =
            kernel.spawn("w" + std::to_string(i), 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, 20);
    }
    AdaptiveQuantumConfig acfg;
    acfg.target_overhead = 0.002;  // 0.2%
    SimAdaptiveQuantum adaptive(alps, acfg, sec(2));

    // The evaluation window stretches to a full cycle (16 s at Q = 40 ms for
    // this 400-share workload), so convergence takes a few minutes of
    // simulated time.
    engine.run_until(engine.now() + sec(240));
    EXPECT_GT(adaptive.adjustments(), 0);
    const Duration q = adaptive.current_quantum();
    EXPECT_GT(q, msec(15));  // grew from 10 ms
    EXPECT_LT(q, msec(120));

    // Measure converged overhead over a couple of cycles.
    const Duration cpu0 = alps.overhead_cpu();
    engine.run_until(engine.now() + sec(40));
    const double overhead = util::to_sec(alps.overhead_cpu() - cpu0) / 40.0;
    // Within the dead band around the 0.2% budget (vs 0.69% unmanaged).
    EXPECT_GT(overhead, 0.0008);
    EXPECT_LT(overhead, 0.0035);
    std::cout << "adaptive: Q=" << util::to_ms(q) << "ms overhead=" << overhead * 100
              << "%\n";
}

TEST(AdaptiveIntegration, KeepsProportionsWhileAdapting) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig scfg;
    scfg.quantum = msec(10);
    SimAlps alps(kernel, scfg);
    std::array<os::Pid, 3> pids{};
    const util::Share shares[] = {1, 2, 3};
    for (int i = 0; i < 3; ++i) {
        pids[static_cast<std::size_t>(i)] =
            kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pids[static_cast<std::size_t>(i)],
                    shares[static_cast<std::size_t>(i)]);
    }
    AdaptiveQuantumConfig acfg;
    acfg.target_overhead = 0.001;
    SimAdaptiveQuantum adaptive(alps, acfg, sec(1));
    engine.run_until(engine.now() + sec(10));
    // Measure after the controller has settled.
    std::array<util::Duration, 3> base{};
    for (int i = 0; i < 3; ++i) {
        base[static_cast<std::size_t>(i)] =
            kernel.cpu_time(pids[static_cast<std::size_t>(i)]);
    }
    engine.run_until(engine.now() + sec(30));
    double consumed[3];
    double total = 0;
    for (int i = 0; i < 3; ++i) {
        consumed[i] = util::to_sec(kernel.cpu_time(pids[static_cast<std::size_t>(i)]) -
                                   base[static_cast<std::size_t>(i)]);
        total += consumed[i];
    }
    EXPECT_NEAR(consumed[0] / total, 1.0 / 6.0, 0.03);
    EXPECT_NEAR(consumed[1] / total, 2.0 / 6.0, 0.03);
    EXPECT_NEAR(consumed[2] / total, 3.0 / 6.0, 0.03);
}

}  // namespace
}  // namespace alps::core
