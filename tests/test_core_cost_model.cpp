#include "alps/cost_model.h"

#include <gtest/gtest.h>

namespace alps::core {
namespace {

TEST(CostModel, IdleTickCostsOnlyTimerEvent) {
    const CostModel m;
    TickStats s;
    EXPECT_EQ(m.tick_cost(s), util::from_us(9.02));
}

TEST(CostModel, MeasurementsFollowTable1Line) {
    const CostModel m;
    TickStats s;
    s.measured = 3;
    // 9.02 (timer) + 1.1 + 17.4*3
    EXPECT_EQ(m.tick_cost(s), util::from_us(9.02 + 1.1 + 17.4 * 3));
}

TEST(CostModel, SignalsCost) {
    const CostModel m;
    TickStats s;
    s.suspended = 2;
    s.resumed = 1;
    EXPECT_EQ(m.tick_cost(s), util::from_us(9.02 + 0.97 * 3));
}

TEST(CostModel, CombinedOperations) {
    const CostModel m;
    TickStats s;
    s.measured = 10;
    s.suspended = 4;
    s.resumed = 4;
    const double us = 9.02 + 1.1 + 17.4 * 10 + 0.97 * 8;
    EXPECT_EQ(m.tick_cost(s), util::from_us(us));
}

TEST(CostModel, CustomCoefficients) {
    CostModel m;
    m.timer_event_us = 1.0;
    m.measure_base_us = 0.0;
    m.measure_per_proc_us = 2.0;
    m.signal_us = 0.5;
    TickStats s;
    s.measured = 5;
    s.suspended = 2;
    EXPECT_EQ(m.tick_cost(s), util::from_us(1.0 + 10.0 + 1.0));
}

TEST(CostModel, CostGrowsLinearlyInMeasuredCount) {
    const CostModel m;
    TickStats a, b;
    a.measured = 10;
    b.measured = 20;
    const auto d1 = m.tick_cost(a);
    const auto d2 = m.tick_cost(b);
    EXPECT_EQ((d2 - d1).count(), util::from_us(17.4 * 10).count());
}

}  // namespace
}  // namespace alps::core
