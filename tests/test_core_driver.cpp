// AlpsDriverBehavior timing: boundary bookkeeping under normal and
// pathological tick costs.
#include <gtest/gtest.h>

#include <memory>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::core {
namespace {

using util::msec;
using util::sec;

TEST(AlpsDriver, TicksOncePerQuantum) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    SimAlps alps(kernel, cfg);
    const os::Pid w = kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
    alps.manage(w, 1);
    engine.run_until(engine.now() + sec(2));
    // ~200 quanta in 2 s; the first fires at t=Q.
    EXPECT_NEAR(static_cast<double>(alps.driver().ticks_run()), 200.0, 3.0);
    EXPECT_EQ(alps.driver().boundaries_missed(), 0u);
}

TEST(AlpsDriver, PathologicalTickCostSkipsBoundariesInsteadOfBunching) {
    // A cost model where one tick costs 2.5 quanta of CPU: the driver can
    // only complete a tick every ~3 boundaries. The absolute-deadline logic
    // must skip the missed boundaries (count them) rather than fire a burst
    // of catch-up ticks.
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    CostModel pathological;
    pathological.timer_event_us = 25000.0;  // 25 ms per tick
    SimAlps alps(kernel, cfg, pathological);
    const os::Pid w = kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
    alps.manage(w, 1);
    engine.run_until(engine.now() + sec(3));

    const auto ticks = alps.driver().ticks_run();
    const auto missed = alps.driver().boundaries_missed();
    // Each tick burns 25 ms (plus queueing behind the workload — at this
    // demand the driver's own priority degrades too), so a tick completes
    // every ~30+ ms: around 100 ticks in 3 s, never a catch-up burst of 300.
    EXPECT_GT(ticks, 60u);
    EXPECT_LT(ticks, 120u);
    // Most boundaries were skipped, roughly two per completed tick.
    EXPECT_GT(missed, ticks);
    // Accounted boundaries can lag the wall total (in-flight sequence,
    // dispatch delay) but never exceed it.
    EXPECT_LE(ticks + missed, 300u);
    EXPECT_GE(ticks + missed, 240u);
}

TEST(AlpsDriver, DriverSurvivesEmptyScheduler) {
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    SimAlps alps(kernel, cfg);  // nothing managed
    engine.run_until(engine.now() + sec(1));
    EXPECT_GE(alps.driver().ticks_run(), 95u);
    EXPECT_TRUE(kernel.alive(alps.driver_pid()));
    // An idle driver costs only the timer events.
    EXPECT_LT(util::to_sec(alps.overhead_cpu()), 0.005);
}

TEST(AlpsDriver, SpawningDuringBehaviorHookIsSafe) {
    // A workload process whose behaviour spawns a child mid-run (like the
    // web master); the ALPS driver keeps control throughout.
    sim::Engine engine;
    os::Kernel kernel(engine);
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    SimAlps alps(kernel, cfg);

    os::Pid child = os::kNoPid;
    auto spawner = std::make_unique<os::FunctionBehavior>(
        [&, phase = 0](os::ProcContext ctx) mutable -> os::Action {
            if (phase++ == 0) return os::RunAction{msec(50)};
            if (child == os::kNoPid) {
                child = ctx.kernel.spawn("child", 0,
                                         std::make_unique<os::CpuBoundBehavior>());
            }
            return os::RunAction{os::kRunForever};
        });
    const os::Pid parent = kernel.spawn("parent", 0, std::move(spawner));
    alps.manage(parent, 1);
    engine.run_until(engine.now() + sec(2));
    ASSERT_NE(child, os::kNoPid);
    EXPECT_TRUE(kernel.alive(child));
    // The child is NOT under ALPS (never managed): it competes freely, and
    // ALPS still correctly meters the parent within the pair.
    EXPECT_GT(kernel.cpu_time(child).count(), 0);
    EXPECT_EQ(alps.driver().boundaries_missed(), 0u);
}

}  // namespace
}  // namespace alps::core
