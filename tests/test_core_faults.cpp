// The degradation policy under an unreliable backend: rebaseline instead of
// abort, bounded retries, self-healing re-issue of lost signals, quarantine-
// then-drop, exception containment, and the liveness property that no entity
// stays suspended once faults stop. Faults come either from the scripted
// MockControl or from the FaultInjectingControl decorator.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "alps/fault.h"
#include "alps/scheduler.h"
#include "mock_control.h"
#include "util/time.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::Duration;
using util::msec;

constexpr Duration kQ = msec(10);

SchedulerConfig config() {
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    return cfg;
}

/// One "real world" step: the kernel grants a quantum, then ALPS ticks.
void step(MockControl& mc, Scheduler& sched, int n = 1) {
    for (int i = 0; i < n; ++i) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
}

double invariant_gap_quanta(const Scheduler& sched) {
    double sum = 0.0;
    for (const EntityId id : sched.ids()) sum += sched.allowance(id);
    const double q = static_cast<double>(sched.config().quantum.count());
    return std::abs(sum * q -
                    static_cast<double>(sched.cycle_time_remaining().count())) /
           q;
}

// ----------------------------------------------------------------------------
// FaultInjectingControl

TEST(FaultLayer, DisabledDecoratorIsTransparent) {
    MockControl mc;
    mc.ensure(1).cpu = msec(3);
    FaultInjectingControl faulty(mc, FaultPlan::uniform(1.0, /*seed=*/9));
    // Even a certain-fault plan does nothing while disabled.
    EXPECT_TRUE(faulty.read_progress(1).ok);
    EXPECT_EQ(faulty.read_progress(1).cpu_time, msec(3));
    EXPECT_EQ(faulty.suspend(1), ControlResult::kOk);
    EXPECT_EQ(faulty.resume(1), ControlResult::kOk);
    EXPECT_EQ(faulty.injected().total(), 0u);
}

TEST(FaultLayer, InjectionIsDeterministicInSeed) {
    const auto run = [](std::uint64_t seed) {
        MockControl mc;
        mc.ensure(1);
        FaultInjectingControl faulty(mc, FaultPlan::uniform(0.3, seed));
        faulty.set_enabled(true);
        std::uint64_t oks = 0;
        for (int i = 0; i < 200; ++i) {
            mc.entities[1].cpu += msec(1);
            if (faulty.read_progress(1).ok) ++oks;
            if (faulty.suspend(1) == ControlResult::kOk) ++oks;
            if (faulty.resume(1) == ControlResult::kOk) ++oks;
        }
        return std::pair{oks, faulty.injected().total()};
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7).second, 0u);
    EXPECT_NE(run(7), run(8));  // different stream, different campaign
}

TEST(FaultLayer, PidReuseJumpsBackwardsOnceThenMonotone) {
    MockControl mc;
    mc.ensure(1);
    FaultPlan plan;
    plan.pid_reuse = 1.0;  // every read tries to inject a reuse
    FaultInjectingControl faulty(mc, plan);
    mc.entities[1].cpu = msec(50);
    EXPECT_EQ(faulty.read_progress(1).cpu_time, msec(50));  // disabled
    faulty.set_enabled(true);
    // First faulted read: the clock restarts at zero (new pid owner).
    EXPECT_EQ(faulty.read_progress(1).cpu_time, Duration::zero());
    // And advances monotonically from there.
    mc.entities[1].cpu = msec(53);
    const Duration next = faulty.read_progress(1).cpu_time;
    EXPECT_GE(next, Duration::zero());
    EXPECT_LE(next, msec(3));
    EXPECT_GE(faulty.injected().pid_reuses, 1u);
}

// ----------------------------------------------------------------------------
// Rebaseline instead of abort (the old ALPS_ENSURE(consumed >= 0))

TEST(Degradation, BackwardsCpuSampleRebaselinesInsteadOfAborting) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    step(mc, sched, 5);
    // Pid 1 is recycled: its CPU counter restarts near zero.
    mc.entities[1].cpu = Duration::zero();
    EXPECT_NO_THROW(step(mc, sched, 5));
    EXPECT_GE(sched.health().rebaselines, 1u);
    EXPECT_TRUE(sched.contains(1));
    EXPECT_LT(invariant_gap_quanta(sched), 1e-6);
}

// ----------------------------------------------------------------------------
// Self-healing

TEST(Degradation, LostResumeIsReissuedWithinACycle) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    // The first resume to entity 2 is lost: reported delivered, not applied.
    mc.entities[2].lose_signals = 1;
    step(mc, sched);  // tick 1 "resumes" both; 2 is actually still stopped
    EXPECT_TRUE(mc.entities[2].suspended);
    EXPECT_TRUE(sched.eligible(2));  // the scheduler's desired state
    // The next measurement of 2 sees stopped-while-eligible and re-issues.
    step(mc, sched, 3);
    EXPECT_FALSE(mc.entities[2].suspended);
    EXPECT_GE(sched.health().reissues, 1u);
    EXPECT_FALSE(sched.health().degraded() && mc.entities[2].suspended);
}

TEST(Degradation, DeniedSuspendIsRetriedUntilDelivered) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 3);
    mc.entities[1].deny_signals = 3;  // next three signals to 1 bounce
    step(mc, sched, 40);
    EXPECT_GE(sched.health().control_failures, 3u);
    EXPECT_GE(sched.health().reissues, 1u);
    EXPECT_TRUE(sched.contains(1));
    EXPECT_FALSE(sched.quarantined(1));  // 3 denials < quarantine_after
    // Once the denials drained, the mock state tracks the desired state.
    EXPECT_EQ(mc.entities[1].suspended, !sched.eligible(1));
    EXPECT_LT(invariant_gap_quanta(sched), 1e-6);
}

// ----------------------------------------------------------------------------
// Quarantine then drop

TEST(Degradation, PersistentReadFailureQuarantinesThenDropsEntity) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    step(mc, sched, 3);
    const Share total_before = sched.total_shares();
    mc.entities[1].fail_reads = 1000000;  // the channel to 1 goes dark
    step(mc, sched, 200);
    EXPECT_GE(sched.health().quarantines, 1u);
    EXPECT_EQ(sched.health().drops, 1u);
    EXPECT_FALSE(sched.contains(1));
    // The drop released it (never leave a process stopped) and removed its
    // share from the cycle accounting.
    EXPECT_FALSE(mc.entities[1].suspended);
    EXPECT_EQ(sched.total_shares(), total_before - 1);
    EXPECT_LT(invariant_gap_quanta(sched), 1e-6);
    // The survivor is unaffected and still being scheduled.
    EXPECT_TRUE(sched.contains(2));
}

TEST(Degradation, QuarantinedEntityRecoversWhenChannelReturns) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    step(mc, sched, 3);
    // Enough consecutive failures to quarantine (4) but not to drop (12):
    // quarantine needs 4 failed read-ticks; each tick burns up to 3 attempts
    // (1 + 2 retries). 15 scripted failures cover it with one spare tick.
    mc.entities[1].fail_reads = 15;
    int waited = 0;
    while (!sched.quarantined(1) && waited < 100) {
        step(mc, sched);
        ++waited;
    }
    ASSERT_TRUE(sched.quarantined(1));
    // While quarantined it free-runs: not suspended, still accounted.
    EXPECT_FALSE(mc.entities[1].suspended);
    EXPECT_TRUE(sched.contains(1));
    // The channel heals (scripted failures exhausted) -> probe recovers it.
    step(mc, sched, 10);
    EXPECT_FALSE(sched.quarantined(1));
    EXPECT_TRUE(sched.contains(1));
    EXPECT_EQ(sched.health().drops, 0u);
    EXPECT_LT(invariant_gap_quanta(sched), 1e-6);
}

// ----------------------------------------------------------------------------
// Exception containment (satellite: teardown still releases everything)

/// A backend whose reads start throwing mid-run (a bug or a torn pipe, not a
/// clean error return).
class ThrowingControl final : public ProcessControl {
public:
    explicit ThrowingControl(MockControl& inner) : inner_(inner) {}
    bool throw_reads = false;
    bool throw_signals = false;

    Sample read_progress(EntityId id) override {
        if (throw_reads) throw std::runtime_error("read exploded");
        return inner_.read_progress(id);
    }
    ControlResult suspend(EntityId id) override {
        if (throw_signals) throw std::runtime_error("suspend exploded");
        return inner_.suspend(id);
    }
    ControlResult resume(EntityId id) override {
        if (throw_signals) throw std::runtime_error("resume exploded");
        return inner_.resume(id);
    }

private:
    MockControl& inner_;
};

TEST(Degradation, TickContainsBackendExceptionsAndTeardownReleasesAll) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    ThrowingControl throwing(mc);
    Scheduler sched(throwing, config());
    sched.add(1, 1);
    sched.add(2, 1);
    step(mc, sched, 5);
    throwing.throw_reads = true;
    throwing.throw_signals = true;
    for (int i = 0; i < 20; ++i) {
        mc.run_kernel_quantum(kQ);
        EXPECT_NO_THROW(sched.tick());  // exceptions become counted faults
    }
    EXPECT_GE(sched.health().exceptions, 1u);
    // Teardown with a still-throwing backend must not throw either
    // (release_all is noexcept) ...
    EXPECT_NO_THROW(sched.release_all());
    // ... and once the backend returns, release_all leaves nothing stopped.
    throwing.throw_reads = false;
    throwing.throw_signals = false;
    sched.release_all();
    EXPECT_FALSE(mc.entities[1].suspended);
    EXPECT_FALSE(mc.entities[2].suspended);
}

// ----------------------------------------------------------------------------
// Liveness property (seeded sweep): faults stop -> everything converges

TEST(DegradationProperty, NoEntityStaysSuspendedAfterFaultsStop) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
        MockControl mc;
        for (EntityId id = 1; id <= 4; ++id) mc.ensure(id);
        FaultInjectingControl faulty(mc, FaultPlan::uniform(0.05, seed));
        Scheduler sched(faulty, config());
        for (EntityId id = 1; id <= 4; ++id) sched.add(id, static_cast<Share>(id));

        faulty.set_enabled(true);
        for (int i = 0; i < 400; ++i) {
            mc.run_kernel_quantum(kQ);
            ASSERT_NO_THROW(sched.tick()) << "seed " << seed;
        }
        faulty.disable();
        // Drain: well over one cycle (total shares 10 -> ~10+ ticks/cycle).
        for (int i = 0; i < 60; ++i) {
            mc.run_kernel_quantum(kQ);
            sched.tick();
        }

        Share total = 0;
        for (EntityId id = 1; id <= 4; ++id) {
            if (!sched.contains(id)) {
                // Dropped entities must have been released.
                EXPECT_FALSE(mc.entities[id].suspended) << "seed " << seed;
                continue;
            }
            total += sched.share(id);
            // Actual state equals desired state: nothing wedged in SIGSTOP
            // against the scheduler's will.
            EXPECT_EQ(mc.entities[id].suspended, !sched.eligible(id))
                << "seed " << seed << " entity " << id;
        }
        // Accounting invariants survived quarantines and drops.
        EXPECT_EQ(sched.total_shares(), total) << "seed " << seed;
        EXPECT_LT(invariant_gap_quanta(sched), 1e-6) << "seed " << seed;
    }
}

}  // namespace
}  // namespace alps::core
