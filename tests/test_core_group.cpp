#include "alps/group_control.h"

#include <gtest/gtest.h>

#include <map>

#include "util/assert.h"

namespace alps::core {
namespace {

using util::Duration;
using util::msec;

/// A fake host with hand-driven per-pid CPU clocks and a per-uid registry.
class FakeHost final : public ProcessHost {
public:
    struct P {
        Duration cpu{0};
        bool blocked = false;
        bool alive = true;
        bool stopped = false;
        HostUid uid = 0;
    };

    Sample read_pid(HostPid pid) override {
        auto it = procs.find(pid);
        if (it == procs.end() || !it->second.alive) {
            Sample s;
            s.alive = false;
            return s;
        }
        Sample s;
        s.cpu_time = it->second.cpu;
        s.blocked = it->second.blocked;
        s.stopped = it->second.stopped;
        return s;
    }

    ControlResult stop_pid(HostPid pid) override {
        procs[pid].stopped = true;
        return ControlResult::kOk;
    }
    ControlResult cont_pid(HostPid pid) override {
        procs[pid].stopped = false;
        return ControlResult::kOk;
    }

    using ProcessHost::pids_of_user;
    std::vector<HostPid> pids_of_user(HostUid uid) override {
        std::vector<HostPid> out;
        for (const auto& [pid, p] : procs) {
            if (p.alive && p.uid == uid) out.push_back(pid);
        }
        return out;
    }

    std::map<HostPid, P> procs;
};

TEST(GroupControl, SumsMemberConsumption) {
    FakeHost host;
    host.procs[10] = {msec(5), false, true, false, 0};
    host.procs[11] = {msec(7), false, true, false, 0};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 10);
    gc.add_member(g, 11);
    // Baseline at join: nothing charged yet.
    EXPECT_EQ(gc.read_progress(g).cpu_time, Duration::zero());
    host.procs[10].cpu += msec(3);
    host.procs[11].cpu += msec(4);
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(7));
    // Cumulative, not delta.
    host.procs[10].cpu += msec(1);
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(8));
}

TEST(GroupControl, BlockedOnlyWhenAllMembersBlocked) {
    FakeHost host;
    host.procs[1] = {};
    host.procs[2] = {};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    gc.add_member(g, 2);
    EXPECT_FALSE(gc.read_progress(g).blocked);
    host.procs[1].blocked = true;
    EXPECT_FALSE(gc.read_progress(g).blocked);
    host.procs[2].blocked = true;
    EXPECT_TRUE(gc.read_progress(g).blocked);
}

TEST(GroupControl, EmptyPrincipalReportsBlocked) {
    FakeHost host;
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("empty");
    const Sample s = gc.read_progress(g);
    EXPECT_TRUE(s.blocked);  // not contending for the CPU
    EXPECT_TRUE(s.alive);    // principals persist
}

TEST(GroupControl, SuspendStopsAllMembersAndLateJoiners) {
    FakeHost host;
    host.procs[1] = {};
    host.procs[2] = {};
    host.procs[3] = {};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    gc.add_member(g, 2);
    gc.suspend(g);
    EXPECT_TRUE(host.procs[1].stopped);
    EXPECT_TRUE(host.procs[2].stopped);
    gc.add_member(g, 3);  // joins a suspended principal
    EXPECT_TRUE(host.procs[3].stopped);
    gc.resume(g);
    EXPECT_FALSE(host.procs[1].stopped);
    EXPECT_FALSE(host.procs[3].stopped);
}

TEST(GroupControl, DeadMembersDroppedButConsumptionRetained) {
    FakeHost host;
    host.procs[1] = {};
    host.procs[2] = {};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    gc.add_member(g, 2);
    host.procs[1].cpu += msec(10);
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(10));
    host.procs[1].alive = false;
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(10));  // kept
    EXPECT_EQ(gc.members(g), (std::vector<HostPid>{2}));
}

TEST(GroupControl, RefreshTracksUidProcesses) {
    FakeHost host;
    host.procs[1] = {Duration{0}, false, true, false, /*uid=*/500};
    host.procs[2] = {Duration{0}, false, true, false, 501};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("u500", 500);
    gc.refresh(g);
    EXPECT_EQ(gc.members(g), (std::vector<HostPid>{1}));

    // A new process of the user appears (Apache forks a worker).
    host.procs[3] = {Duration{0}, false, true, false, 500};
    gc.refresh(g);
    EXPECT_EQ(gc.members(g), (std::vector<HostPid>{1, 3}));

    // One dies; refresh drops it.
    host.procs[1].alive = false;
    gc.refresh(g);
    EXPECT_EQ(gc.members(g), (std::vector<HostPid>{3}));
}

TEST(GroupControl, RefreshJoinsNewcomersStoppedWhenSuspended) {
    FakeHost host;
    host.procs[1] = {Duration{0}, false, true, false, 500};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("u500", 500);
    gc.refresh(g);
    gc.suspend(g);
    host.procs[2] = {Duration{0}, false, true, false, 500};
    gc.refresh(g);
    EXPECT_TRUE(host.procs[2].stopped);  // inherits the group's ineligibility
}

TEST(GroupControl, RefreshReturnsScanSizeAndIgnoresManualPrincipals) {
    FakeHost host;
    host.procs[1] = {Duration{0}, false, true, false, 500};
    host.procs[2] = {Duration{0}, false, true, false, 500};
    GroupProcessControl gc(host);
    const EntityId manual = gc.add_principal("manual");
    const EntityId tracked = gc.add_principal("u500", 500);
    EXPECT_EQ(gc.refresh(manual), 0);
    EXPECT_EQ(gc.refresh(tracked), 2);
    EXPECT_EQ(gc.refresh_all(), 2);
}

TEST(GroupControl, NewMemberBaselinedAtJoin) {
    FakeHost host;
    host.procs[1] = {msec(100), false, true, false, 0};  // pre-existing CPU
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    EXPECT_EQ(gc.read_progress(g).cpu_time, Duration::zero());
    host.procs[1].cpu += msec(2);
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(2));
}

TEST(GroupControl, RemoveMemberChargesTailAndResumes) {
    FakeHost host;
    host.procs[1] = {};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    gc.suspend(g);
    host.procs[1].cpu += msec(4);  // (imagine it ran just before the stop)
    gc.remove_member(g, 1);
    EXPECT_FALSE(host.procs[1].stopped);  // handed back to the kernel
    EXPECT_EQ(gc.read_progress(g).cpu_time, msec(4));  // tail charged
}

TEST(GroupControl, ContractViolations) {
    FakeHost host;
    host.procs[1] = {};
    GroupProcessControl gc(host);
    const EntityId g = gc.add_principal("g");
    gc.add_member(g, 1);
    EXPECT_THROW(gc.add_member(g, 1), util::ContractViolation);   // duplicate
    EXPECT_THROW(gc.remove_member(g, 99), util::ContractViolation);
    EXPECT_THROW(gc.read_progress(999), util::ContractViolation);  // no such principal
    EXPECT_THROW(gc.members(999), util::ContractViolation);
}

TEST(GroupControl, MultiplePrincipalsIndependent) {
    FakeHost host;
    host.procs[1] = {Duration{0}, false, true, false, 500};
    host.procs[2] = {Duration{0}, false, true, false, 501};
    GroupProcessControl gc(host);
    const EntityId a = gc.add_principal("a", 500);
    const EntityId b = gc.add_principal("b", 501);
    gc.refresh_all();
    gc.suspend(a);
    EXPECT_TRUE(host.procs[1].stopped);
    EXPECT_FALSE(host.procs[2].stopped);
    host.procs[2].cpu += msec(6);
    EXPECT_EQ(gc.read_progress(a).cpu_time, Duration::zero());
    EXPECT_EQ(gc.read_progress(b).cpu_time, msec(6));
}

}  // namespace
}  // namespace alps::core
