// Property tests for group principals under membership churn, against a fake
// host whose per-pid clocks the test drives by hand. Invariant: a
// principal's reported cumulative CPU equals the sum of its members'
// consumption while they were members (join-baselined, death-retained).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alps/group_control.h"
#include "alps/scheduler.h"
#include "util/rng.h"

namespace alps::core {
namespace {

using util::Duration;
using util::msec;

class ChurnHost final : public ProcessHost {
public:
    struct P {
        Duration cpu{0};
        bool blocked = false;
        bool alive = true;
        bool stopped = false;
        HostUid uid = 0;
    };

    Sample read_pid(HostPid pid) override {
        auto it = procs.find(pid);
        if (it == procs.end() || !it->second.alive) {
            Sample s;
            s.alive = false;
            return s;
        }
        Sample s;
        s.cpu_time = it->second.cpu;
        s.blocked = it->second.blocked;
        s.stopped = it->second.stopped;
        return s;
    }
    ControlResult stop_pid(HostPid pid) override {
        procs[pid].stopped = true;
        return ControlResult::kOk;
    }
    ControlResult cont_pid(HostPid pid) override {
        procs[pid].stopped = false;
        return ControlResult::kOk;
    }
    using ProcessHost::pids_of_user;
    std::vector<HostPid> pids_of_user(HostUid uid) override {
        std::vector<HostPid> out;
        for (const auto& [pid, p] : procs) {
            if (p.alive && p.uid == uid) out.push_back(pid);
        }
        return out;
    }

    std::map<HostPid, P> procs;
};

class GroupChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupChurnTest, PrincipalAccountingMatchesGroundTruth) {
    ChurnHost host;
    GroupProcessControl gc(host);
    util::Rng rng(GetParam());

    const EntityId g = gc.add_principal("u", 500);
    HostPid next_pid = 1;
    // Ground truth: CPU consumed by members *while members and alive*.
    double truth_ns = 0.0;

    for (int step = 0; step < 500; ++step) {
        const double roll = rng.next_double();
        if (roll < 0.1) {
            host.procs[next_pid++] = {Duration{0}, false, true, false, 500};
            gc.refresh(g);
        } else if (roll < 0.16 && !gc.members(g).empty()) {
            const auto members = gc.members(g);
            const HostPid victim = members[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(members.size()) - 1))];
            // Death: consumption since the last read is lost to the
            // accounting (a real kvm read of a dead pid returns nothing),
            // so the ground truth must be synced by a read *first*.
            gc.read_progress(g);
            truth_ns = static_cast<double>(gc.read_progress(g).cpu_time.count());
            host.procs[victim].alive = false;
            gc.refresh(g);
        } else {
            // Members that are alive and not stopped consume random CPU.
            for (const HostPid pid : gc.members(g)) {
                auto& p = host.procs[pid];
                if (!p.alive || p.stopped) continue;
                const auto d = Duration{rng.uniform_int(0, msec(5).count())};
                p.cpu += d;
                truth_ns += static_cast<double>(d.count());
            }
            if (rng.next_double() < 0.1) {
                gc.suspend(g);
            } else if (rng.next_double() < 0.3) {
                gc.resume(g);
            }
        }
        const auto reported = static_cast<double>(gc.read_progress(g).cpu_time.count());
        EXPECT_NEAR(reported, truth_ns, 1.0) << "step " << step;
        truth_ns = reported;  // re-sync (reads are the accounting points)
    }
}

TEST_P(GroupChurnTest, SuspendedPrincipalMembersAllStopped) {
    ChurnHost host;
    GroupProcessControl gc(host);
    util::Rng rng(GetParam() ^ 0xfeed);
    const EntityId g = gc.add_principal("u", 700);
    HostPid next_pid = 100;
    bool suspended = false;
    for (int step = 0; step < 300; ++step) {
        const double roll = rng.next_double();
        if (roll < 0.15) {
            host.procs[next_pid++] = {Duration{0}, false, true, false, 700};
            gc.refresh(g);
        } else if (roll < 0.25) {
            suspended = !suspended;
            if (suspended) {
                gc.suspend(g);
            } else {
                gc.resume(g);
            }
        } else if (roll < 0.3 && !gc.members(g).empty()) {
            const auto members = gc.members(g);
            host.procs[members[0]].alive = false;
            gc.refresh(g);
        }
        // Invariant: membership and the group's suspension agree.
        for (const HostPid pid : gc.members(g)) {
            EXPECT_EQ(host.procs[pid].stopped, suspended)
                << "pid " << pid << " step " << step;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupChurnTest,
                         ::testing::Values(21u, 42u, 63u, 84u));

}  // namespace
}  // namespace alps::core
