// Property-style tests of the ALPS core (parameterized sweeps over share
// vectors, seeds, and backend behaviours).
//
// The central invariant (see scheduler.h): after every tick,
//     Σ_i allowance_i · Q == t_c
// holds no matter how the "kernel" distributed CPU, how entities blocked,
// died, joined, or were reweighted.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "alps/scheduler.h"
#include "mock_control.h"
#include "util/rng.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::Duration;
using util::msec;
using util::Share;

constexpr Duration kQ = msec(10);

double allowance_sum_quanta(const Scheduler& s) {
    double sum = 0.0;
    for (EntityId id : s.ids()) sum += s.allowance(id);
    return sum;
}

void expect_invariant(const Scheduler& s) {
    const double lhs = allowance_sum_quanta(s) * static_cast<double>(kQ.count());
    const double rhs = static_cast<double>(s.cycle_time_remaining().count());
    // fp tolerance: allowances accumulate division error over many ticks.
    EXPECT_NEAR(lhs, rhs, 1e-3 * static_cast<double>(kQ.count()))
        << "sum(allowance)*Q must equal t_c";
}

// ---------------------------------------------------------------------------

struct RandomWorkloadParam {
    std::vector<Share> shares;
    std::uint64_t seed;
    bool lazy;
    bool io;
};

std::string param_name(const ::testing::TestParamInfo<RandomWorkloadParam>& info) {
    std::string name = info.param.lazy ? "lazy" : "eager";
    name += info.param.io ? "Io" : "NoIo";
    name += "Seed" + std::to_string(info.param.seed) + "N" +
            std::to_string(info.param.shares.size());
    return name;
}

class RandomWorkloadTest : public ::testing::TestWithParam<RandomWorkloadParam> {};

TEST_P(RandomWorkloadTest, InvariantHoldsUnderChaoticBackend) {
    const auto& p = GetParam();
    MockControl mc;
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    cfg.lazy_measurement = p.lazy;
    cfg.io_accounting = p.io;
    Scheduler sched(mc, cfg);

    util::Rng rng(p.seed);
    for (std::size_t i = 0; i < p.shares.size(); ++i) {
        const auto id = static_cast<EntityId>(i + 1);
        mc.ensure(id);
        sched.add(id, p.shares[i]);
        expect_invariant(sched);
    }

    for (int t = 0; t < 600; ++t) {
        // Chaotic kernel: random per-entity progress (but never more than Q
        // per entity per tick — single-CPU bound), random blocking flips.
        for (auto& [id, e] : mc.entities) {
            if (e.suspended || !e.alive) continue;
            if (rng.next_double() < 0.1) e.blocked = !e.blocked;
            if (!e.blocked) {
                e.cpu += Duration{rng.uniform_int(0, kQ.count())};
            }
        }
        sched.tick();
        expect_invariant(sched);

        // Eligibility must mirror the suspension the backend saw.
        for (EntityId id : sched.ids()) {
            EXPECT_EQ(sched.eligible(id), !mc.entities.at(id).suspended);
        }
    }
    EXPECT_GT(sched.cycles_completed(), 0u);
}

TEST_P(RandomWorkloadTest, InvariantHoldsAcrossMembershipChanges) {
    const auto& p = GetParam();
    MockControl mc;
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    cfg.lazy_measurement = p.lazy;
    cfg.io_accounting = p.io;
    Scheduler sched(mc, cfg);

    util::Rng rng(p.seed ^ 0xabcdef);
    EntityId next_id = 1;
    for (Share s : p.shares) {
        mc.ensure(next_id);
        sched.add(next_id++, s);
    }

    for (int t = 0; t < 400; ++t) {
        mc.run_kernel_quantum(kQ);
        const double roll = rng.next_double();
        const auto ids = sched.ids();
        auto pick = [&]() {
            return ids[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
        };
        if (roll < 0.03 && ids.size() > 1) {
            sched.remove(pick());  // explicit departure
        } else if (roll < 0.06 && !ids.empty()) {
            mc.entities[pick()].alive = false;  // death, found at measurement
        } else if (roll < 0.1) {
            mc.ensure(next_id);
            sched.add(next_id++, rng.uniform_int(1, 9));
        } else if (roll < 0.13 && !ids.empty()) {
            sched.set_share(pick(), rng.uniform_int(1, 9));
        }
        sched.tick();
        expect_invariant(sched);
    }
}

TEST_P(RandomWorkloadTest, LongRunProportionsConvergeToShares) {
    const auto& p = GetParam();
    if (p.io == false) return;  // proportionality statement needs defaults
    MockControl mc;
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    cfg.lazy_measurement = p.lazy;
    Scheduler sched(mc, cfg);

    for (std::size_t i = 0; i < p.shares.size(); ++i) {
        const auto id = static_cast<EntityId>(i + 1);
        mc.ensure(id);
        sched.add(id, p.shares[i]);
    }
    sched.tick();
    const int ticks = 12000;
    for (int t = 0; t < ticks; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    const Share total_shares = std::accumulate(p.shares.begin(), p.shares.end(),
                                               static_cast<Share>(0));
    double total = 0.0;
    for (auto& [id, e] : mc.entities) total += static_cast<double>(e.cpu.count());
    ASSERT_GT(total, 0.0);
    for (std::size_t i = 0; i < p.shares.size(); ++i) {
        const auto id = static_cast<EntityId>(i + 1);
        const double frac =
            static_cast<double>(mc.entities[id].cpu.count()) / total;
        const double ideal = static_cast<double>(p.shares[i]) /
                             static_cast<double>(total_shares);
        EXPECT_NEAR(frac, ideal, 0.035)
            << "entity " << id << " share " << p.shares[i];
    }
}

TEST_P(RandomWorkloadTest, LazyNeverMeasuresMoreThanEager) {
    const auto& p = GetParam();
    auto run = [&](bool lazy) {
        MockControl mc;
        SchedulerConfig cfg;
        cfg.quantum = kQ;
        cfg.lazy_measurement = lazy;
        cfg.io_accounting = p.io;
        Scheduler sched(mc, cfg);
        for (std::size_t i = 0; i < p.shares.size(); ++i) {
            const auto id = static_cast<EntityId>(i + 1);
            mc.ensure(id);
            sched.add(id, p.shares[i]);
        }
        sched.tick();
        for (int t = 0; t < 2000; ++t) {
            mc.run_kernel_quantum(kQ);
            sched.tick();
        }
        return sched.total_measurements();
    };
    // Equality is possible only for all-single-share workloads (allowance 1
    // means "due every tick" even lazily); lazy must never measure more.
    EXPECT_LE(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(
    ShareSweeps, RandomWorkloadTest,
    ::testing::Values(
        RandomWorkloadParam{{1, 1}, 1, true, true},
        RandomWorkloadParam{{1, 2, 3}, 2, true, true},
        RandomWorkloadParam{{1, 2, 3}, 2, false, true},
        RandomWorkloadParam{{5, 5, 5, 5, 5}, 3, true, true},
        RandomWorkloadParam{{1, 1, 1, 1, 21}, 4, true, true},
        RandomWorkloadParam{{1, 1, 1, 1, 21}, 4, false, false},
        RandomWorkloadParam{{1, 3, 5, 7, 9}, 5, true, true},
        RandomWorkloadParam{{2, 4, 8, 16}, 6, true, false},
        RandomWorkloadParam{{7, 11}, 7, false, true},
        RandomWorkloadParam{{1, 100}, 8, true, true}),
    param_name);

// ---------------------------------------------------------------------------
// Lazy-measurement soundness: the paper's claim is that skipping reads loses
// no control — an entity can never slip past ineligibility by more than the
// CPU it could legally burn between scheduled measurements.

class LazySoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazySoundnessTest, AllowanceNeverGoesBelowMinusOneQuantumPerTick) {
    MockControl mc;
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    Scheduler sched(mc, cfg);
    util::Rng rng(GetParam());

    const std::vector<Share> shares{1, 2, 5, 9};
    for (std::size_t i = 0; i < shares.size(); ++i) {
        const auto id = static_cast<EntityId>(i + 1);
        mc.ensure(id);
        sched.add(id, shares[i]);
    }
    sched.tick();
    for (int t = 0; t < 3000; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
        for (EntityId id : sched.ids()) {
            // An entity consumes at most Q per tick; with measurements
            // postponed by exactly ceil(allowance), the overshoot is bounded
            // by one quantum plus rounding.
            EXPECT_GT(sched.allowance(id), -1.5) << "entity " << id;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazySoundnessTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace alps::core
