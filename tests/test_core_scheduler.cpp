#include "alps/scheduler.h"

#include <gtest/gtest.h>

#include "mock_control.h"
#include "util/assert.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::Duration;
using util::msec;
using util::Share;

constexpr Duration kQ = msec(10);

SchedulerConfig config(bool lazy = true, bool io = true) {
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    cfg.lazy_measurement = lazy;
    cfg.io_accounting = io;
    return cfg;
}

TEST(Scheduler, AddSuspendsAndFirstTickResumes) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 3);
    EXPECT_TRUE(mc.entities[1].suspended);  // ineligible at start (paper)
    EXPECT_FALSE(sched.eligible(1));
    sched.tick();
    EXPECT_FALSE(mc.entities[1].suspended);  // positive allowance -> eligible
    EXPECT_TRUE(sched.eligible(1));
}

TEST(Scheduler, InitialStatePerPaper) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 2);
    sched.add(2, 4);
    EXPECT_EQ(sched.total_shares(), 6);
    EXPECT_EQ(sched.cycle_length(), kQ * 6);
    EXPECT_EQ(sched.cycle_time_remaining(), kQ * 6);  // t_c = S*Q
    EXPECT_DOUBLE_EQ(sched.allowance(1), 2.0);        // allowance_i = share_i
    EXPECT_DOUBLE_EQ(sched.allowance(2), 4.0);
}

TEST(Scheduler, SoleEntityBecomesIneligibleAfterAllowanceExhausted) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 3);
    sched.tick();  // resumes it
    // Consume exactly one quantum per tick.
    int ineligible_at = -1;
    for (int t = 1; t <= 10 && ineligible_at < 0; ++t) {
        if (!mc.entities[1].suspended) mc.entities[1].cpu += kQ;
        sched.tick();
        if (mc.entities[1].suspended) ineligible_at = t;
    }
    // With a lone entity the cycle ends exactly when the allowance does, so
    // it is immediately refilled; it should never be suspended.
    EXPECT_EQ(ineligible_at, -1);
    EXPECT_GE(sched.cycles_completed(), 1u);
}

TEST(Scheduler, TwoEntitiesAlternateEligibility) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    sched.tick();
    for (int t = 0; t < 40; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    // With equal shares and an equal-splitting kernel, ALPS may leave both
    // eligible; the group must complete cycles either way (one per ~2 ticks).
    EXPECT_GE(sched.cycles_completed(), 15u);
}

TEST(Scheduler, ProportionalConsumptionOneToTwo) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 2);
    sched.tick();
    for (int t = 0; t < 3000; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    const double c1 = static_cast<double>(mc.entities[1].cpu.count());
    const double c2 = static_cast<double>(mc.entities[2].cpu.count());
    EXPECT_NEAR(c2 / c1, 2.0, 0.1);
}

TEST(Scheduler, ProportionalConsumptionSkewed) {
    MockControl mc;
    for (EntityId id = 1; id <= 5; ++id) mc.ensure(id);
    Scheduler sched(mc, config());
    // The paper's Skewed5 distribution {1,1,1,1,21}.
    for (EntityId id = 1; id <= 4; ++id) sched.add(id, 1);
    sched.add(5, 21);
    sched.tick();
    for (int t = 0; t < 20000; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    double total = 0.0;
    for (EntityId id = 1; id <= 5; ++id) {
        total += static_cast<double>(mc.entities[id].cpu.count());
    }
    EXPECT_NEAR(static_cast<double>(mc.entities[5].cpu.count()) / total, 21.0 / 25.0,
                0.02);
    for (EntityId id = 1; id <= 4; ++id) {
        EXPECT_NEAR(static_cast<double>(mc.entities[id].cpu.count()) / total,
                    1.0 / 25.0, 0.01);
    }
}

TEST(Scheduler, OverconsumptionIsRepaidNextCycle) {
    // Paper §2.2: "if a process consumes twice its share in one cycle, then
    // the process will not execute in the next cycle".
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    sched.tick();
    // Entity 1 steals the whole first cycle: consumes 2Q at once.
    mc.entities[1].cpu += kQ * 2;
    sched.tick();  // measures the overrun; cycle completes (t_c -> 0)
    EXPECT_TRUE(mc.entities[1].suspended);  // allowance 1-2+1 = 0 -> ineligible
    EXPECT_FALSE(mc.entities[2].suspended);
    // Next cycle: entity 2 consumes its due; entity 1 must stay suspended.
    mc.entities[2].cpu += kQ * 2;
    sched.tick();
    EXPECT_TRUE(mc.entities[1].suspended);
    // After that cycle completes, entity 1's allowance refills to 1 again.
    sched.tick();
    EXPECT_FALSE(mc.entities[1].suspended);
}

TEST(Scheduler, LazyMeasurementSkipsEarlyReads) {
    MockControl mc;
    mc.ensure(1);
    Scheduler lazy_sched(mc, config(/*lazy=*/true));
    lazy_sched.add(1, 10);
    const int base_reads = mc.reads;  // add() baselines once
    // 9 ticks with no consumption: a share-10 entity (allowance 10) is due
    // for measurement only at the 10th tick after the first.
    for (int t = 0; t < 9; ++t) lazy_sched.tick();
    const int reads_during = mc.reads - base_reads;
    EXPECT_LE(reads_during, 1);  // measured at most once (the first tick)
}

TEST(Scheduler, EagerMeasurementReadsEveryTick) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config(/*lazy=*/false));
    sched.add(1, 10);
    const int base_reads = mc.reads;
    for (int t = 0; t < 9; ++t) {
        sched.tick();
    }
    // The first tick still sees it ineligible (no read); the next 8 all read.
    EXPECT_EQ(mc.reads - base_reads, 8);
}

TEST(Scheduler, LazyAndEagerAgreeOnConsumptionRatios) {
    auto run = [](bool lazy) {
        MockControl mc;
        mc.ensure(1);
        mc.ensure(2);
        mc.ensure(3);
        Scheduler sched(mc, config(lazy));
        sched.add(1, 1);
        sched.add(2, 3);
        sched.add(3, 5);
        sched.tick();
        for (int t = 0; t < 5000; ++t) {
            mc.run_kernel_quantum(kQ);
            sched.tick();
        }
        const double total = static_cast<double>(
            (mc.entities[1].cpu + mc.entities[2].cpu + mc.entities[3].cpu).count());
        return std::array<double, 3>{
            static_cast<double>(mc.entities[1].cpu.count()) / total,
            static_cast<double>(mc.entities[2].cpu.count()) / total,
            static_cast<double>(mc.entities[3].cpu.count()) / total};
    };
    const auto lazy = run(true);
    const auto eager = run(false);
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(lazy[static_cast<std::size_t>(i)],
                    eager[static_cast<std::size_t>(i)], 0.02);
    }
    EXPECT_NEAR(lazy[0], 1.0 / 9.0, 0.02);
    EXPECT_NEAR(lazy[1], 3.0 / 9.0, 0.02);
    EXPECT_NEAR(lazy[2], 5.0 / 9.0, 0.02);
}

TEST(Scheduler, BlockedEntityChargedOneQuantumAndCycleShrinks) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    // Eager measurement so the blocked entity is sampled on the very next
    // tick (lazy would postpone it by ceil(allowance) ticks).
    Scheduler sched(mc, config(/*lazy=*/false));
    sched.add(1, 2);
    sched.add(2, 2);
    sched.tick();  // both eligible
    const Duration tc_before = sched.cycle_time_remaining();
    mc.entities[1].blocked = true;
    sched.tick();  // measures 1: blocked -> allowance -1, t_c -= Q
    EXPECT_NEAR(sched.allowance(1), 1.0, 1e-9);
    EXPECT_EQ((tc_before - sched.cycle_time_remaining()).count(), kQ.count());
}

TEST(Scheduler, IoAccountingDisabledIgnoresBlocked) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config(true, /*io=*/false));
    sched.add(1, 2);
    sched.tick();
    mc.entities[1].blocked = true;
    sched.tick();
    EXPECT_DOUBLE_EQ(sched.allowance(1), 2.0);
}

TEST(Scheduler, FullyBlockedEntityEndsCycleEarly) {
    // §2.4: "if a process blocks for all of its allocated quanta during a
    // cycle, then the cycle will end early, as if the blocked process's
    // shares had never contributed to the length of the cycle."
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 3);  // will block forever
    sched.add(2, 3);
    sched.tick();
    mc.entities[1].blocked = true;
    std::uint64_t ticks = 0;
    while (sched.cycles_completed() == 0 && ticks < 100) {
        // Entity 2 alone gets the CPU.
        if (!mc.entities[2].suspended) mc.entities[2].cpu += kQ;
        sched.tick();
        ++ticks;
    }
    EXPECT_GE(sched.cycles_completed(), 1u);
    // Entity 2 should have consumed roughly its own 3 quanta, not 6.
    EXPECT_LE(mc.entities[2].cpu.count(), (kQ * 5).count());
}

TEST(Scheduler, DeadEntityIsDropped) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    sched.tick();
    mc.entities[1].alive = false;
    sched.tick();
    EXPECT_FALSE(sched.contains(1));
    EXPECT_TRUE(sched.contains(2));
    EXPECT_EQ(sched.total_shares(), 1);
}

TEST(Scheduler, RemoveResumesSuspendedEntity) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    EXPECT_TRUE(mc.entities[1].suspended);
    sched.remove(1);
    EXPECT_FALSE(mc.entities[1].suspended);  // ALPS relinquishes control
    EXPECT_EQ(sched.total_shares(), 0);
    EXPECT_FALSE(sched.contains(1));
}

TEST(Scheduler, SetShareAffectsFutureCycles) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    sched.tick();
    for (int t = 0; t < 2000; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    // Reweight 1:1 -> 1:3 and measure the new regime only.
    sched.set_share(2, 3);
    EXPECT_EQ(sched.total_shares(), 4);
    const Duration c1_before = mc.entities[1].cpu;
    const Duration c2_before = mc.entities[2].cpu;
    for (int t = 0; t < 8000; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    const double d1 = static_cast<double>((mc.entities[1].cpu - c1_before).count());
    const double d2 = static_cast<double>((mc.entities[2].cpu - c2_before).count());
    EXPECT_NEAR(d2 / d1, 3.0, 0.15);
}

TEST(Scheduler, ReleaseAllResumesEverything) {
    MockControl mc;
    for (EntityId id = 1; id <= 3; ++id) mc.ensure(id);
    Scheduler sched(mc, config());
    for (EntityId id = 1; id <= 3; ++id) sched.add(id, 1);
    // All start suspended.
    sched.release_all();
    for (EntityId id = 1; id <= 3; ++id) {
        EXPECT_FALSE(mc.entities[id].suspended) << id;
    }
}

TEST(Scheduler, CycleObserverReceivesConsumption) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    std::vector<CycleRecord> records;
    sched.set_cycle_observer([&](const CycleRecord& r) { records.push_back(r); });
    sched.tick();
    for (int t = 0; t < 100; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    ASSERT_FALSE(records.empty());
    const CycleRecord& r = records.front();
    EXPECT_EQ(r.ids, (std::vector<EntityId>{1, 2}));
    EXPECT_EQ(r.shares, (std::vector<Share>{1, 1}));
    Duration total{0};
    for (auto c : r.consumed) total += c;
    // A 2-share cycle carries ~2 quanta of measured consumption.
    EXPECT_NEAR(static_cast<double>(total.count()), static_cast<double>((kQ * 2).count()),
                static_cast<double>(kQ.count()));
    EXPECT_EQ(records.size(), sched.cycles_completed());
}

TEST(Scheduler, TickOnEmptySchedulerIsHarmless) {
    MockControl mc;
    Scheduler sched(mc, config());
    for (int i = 0; i < 5; ++i) sched.tick();
    EXPECT_EQ(sched.cycles_completed(), 0u);
    EXPECT_EQ(sched.tick_count(), 5u);
}

TEST(Scheduler, ContractViolations) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    EXPECT_THROW(sched.add(1, 2), util::ContractViolation);    // duplicate
    EXPECT_THROW(sched.add(2, 0), util::ContractViolation);    // bad share
    EXPECT_THROW(sched.remove(99), util::ContractViolation);   // unknown
    EXPECT_THROW((void)sched.allowance(99), util::ContractViolation);
    EXPECT_THROW(sched.set_share(1, -1), util::ContractViolation);

    SchedulerConfig bad;
    bad.quantum = Duration::zero();
    EXPECT_THROW(Scheduler(mc, bad), util::ContractViolation);
}

TEST(Scheduler, TickStatsCountOperations) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    const TickStats first = sched.tick();
    EXPECT_EQ(first.resumed, 2);  // both become eligible
    EXPECT_EQ(first.suspended, 0);
    // Entity 1 consumes both entities' worth: gets suspended at the next
    // measured tick.
    mc.entities[1].cpu += kQ * 2;
    const TickStats second = sched.tick();
    EXPECT_EQ(second.measured, 2);
    EXPECT_TRUE(second.cycle_completed);
    EXPECT_EQ(second.suspended, 1);
}

TEST(Scheduler, MeasurementCountsAccumulate) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config(/*lazy=*/false));
    sched.add(1, 1);
    sched.tick();
    for (int t = 0; t < 10; ++t) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    EXPECT_EQ(sched.total_measurements(), 10u);
    EXPECT_EQ(sched.tick_count(), 11u);
}

}  // namespace
}  // namespace alps::core
