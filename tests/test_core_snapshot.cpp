#include "alps/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mock_control.h"
#include "util/assert.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::Duration;
using util::msec;

constexpr auto kQ = msec(10);

SchedulerConfig config() {
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    return cfg;
}

TEST(Snapshot, CapturesEverything) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 3);
    sched.tick();
    mc.run_kernel_quantum(kQ);
    sched.tick();

    const SchedulerSnapshot snap = snapshot(sched);
    EXPECT_EQ(snap.quantum, kQ);
    EXPECT_EQ(snap.tick_count, sched.tick_count());
    ASSERT_EQ(snap.entities.size(), 2u);
    EXPECT_EQ(snap.entities[0].id, 1);
    EXPECT_EQ(snap.entities[0].share, 1);
    EXPECT_DOUBLE_EQ(snap.entities[0].allowance, sched.allowance(1));
    EXPECT_EQ(snap.entities[1].share, 3);
}

TEST(Snapshot, RestoreRebuildsIdenticalState) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    SchedulerSnapshot snap;
    {
        Scheduler original(mc, config());
        original.add(1, 1);
        original.add(2, 3);
        original.tick();
        for (int t = 0; t < 10; ++t) {
            mc.run_kernel_quantum(kQ);
            original.tick();
        }
        snap = snapshot(original);
    }
    Scheduler restored(mc, config());
    restore(restored, snap);
    EXPECT_EQ(snapshot(restored), snap);
    EXPECT_EQ(restored.total_shares(), 4);
    EXPECT_EQ(restored.tick_count(), snap.tick_count);
}

TEST(Snapshot, RestoredSchedulerChargesUnsupervisedConsumption) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler original(mc, config());
    original.add(1, 2);
    original.add(2, 2);
    original.tick();
    const SchedulerSnapshot snap = snapshot(original);
    original.release_all();  // "daemon exits"

    // While unsupervised, entity 1 burns a lot of CPU.
    mc.entities[1].cpu += kQ * 4;

    Scheduler restored(mc, config());
    restore(restored, snap);
    restored.tick();
    // The downtime consumption was charged: entity 1 used up everything it
    // was owed (and the cycle turned over once), so it is out of allowance.
    EXPECT_LE(restored.allowance(1), 0.0);
    EXPECT_FALSE(restored.eligible(1));
    EXPECT_TRUE(restored.eligible(2));
}

TEST(Snapshot, CounterResetRebaselinesInsteadOfCharging) {
    MockControl mc;
    mc.ensure(1);
    Scheduler original(mc, config());
    original.add(1, 2);
    original.tick();
    mc.entities[1].cpu += kQ * 5;
    original.tick();  // last_cpu is now 5 quanta
    const SchedulerSnapshot snap = snapshot(original);

    // "Reboot": the host's counters start over.
    mc.entities[1].cpu = msec(3);
    Scheduler restored(mc, config());
    restore(restored, snap);
    const double before = restored.allowance(1);
    mc.entities[1].cpu += kQ;  // one quantum after the restore
    restored.tick();
    // Only the post-restore quantum is charged, not a bogus negative delta.
    EXPECT_NEAR(restored.allowance(1), before - 1.0 + /*refill*/ 0.0, 2.1);
    EXPECT_GT(restored.allowance(1), before - 2.0);
}

TEST(Snapshot, RestoreEnforcesRecordedEligibility) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler original(mc, config());
    original.add(1, 1);
    original.add(2, 1);
    original.tick();
    // Entity 1 overruns and is suspended.
    mc.entities[1].cpu += kQ * 2;
    original.tick();
    ASSERT_FALSE(original.eligible(1));
    const SchedulerSnapshot snap = snapshot(original);

    // Simulate the daemon dying without cleanup: entity 1 was left stopped.
    Scheduler restored(mc, config());
    restore(restored, snap);
    EXPECT_TRUE(mc.entities[1].suspended);
    EXPECT_FALSE(mc.entities[2].suspended);
    EXPECT_FALSE(restored.eligible(1));
}

TEST(Snapshot, RestoreIntoNonEmptySchedulerViolatesContract) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    SchedulerSnapshot snap;
    snap.quantum = kQ;
    EXPECT_THROW(restore(sched, snap), util::ContractViolation);
}

TEST(Snapshot, TextRoundTrip) {
    SchedulerSnapshot snap;
    snap.quantum = msec(25);
    snap.tc_ns = 123456.5;
    snap.tick_count = 42;
    snap.entities.push_back({7, 3, 1.25, true, msec(100)});
    snap.entities.push_back({9, 1, -0.5, false, msec(3)});

    std::stringstream ss;
    serialize(snap, ss);
    const auto back = deserialize(ss);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, snap);
}

TEST(Snapshot, DeserializeRejectsGarbage) {
    auto reject = [](const std::string& text) {
        std::stringstream ss(text);
        EXPECT_FALSE(deserialize(ss).has_value()) << text;
    };
    reject("");
    reject("not-a-snapshot 1\n");
    reject("alps-snapshot 2\n");  // unknown version
    reject("alps-snapshot 1\nquantum_ns 0\n");
    reject("alps-snapshot 1\nquantum_ns 1000000\nentity 1 0 1.0 1 0\n");  // share 0
    reject("alps-snapshot 1\nquantum_ns 1000000\nwat 3\n");  // unknown key
    reject("alps-snapshot 1\ntc_ns 5\n");  // missing quantum
}

TEST(Snapshot, EmptySchedulerRoundTrips) {
    MockControl mc;
    Scheduler sched(mc, config());
    const SchedulerSnapshot snap = snapshot(sched);
    std::stringstream ss;
    serialize(snap, ss);
    const auto back = deserialize(ss);
    ASSERT_TRUE(back.has_value());
    Scheduler restored(mc, config());
    restore(restored, *back);
    EXPECT_EQ(restored.size(), 0u);
}

}  // namespace
}  // namespace alps::core
