// Lazy measurement on the stride A/B engine: skipped ticks must be free of
// backend traffic yet leave the schedule and the cycle records exactly as
// the eager engine produces them (the skip window is provably safe — every
// tick charges at least one stride).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "alps/stride_engine.h"
#include "mock_control.h"
#include "util/time.h"
#include "workload/experiments.h"

namespace alps::core {
namespace {

using util::Duration;

constexpr Duration kQuantum = util::msec(10);

struct Rig {
    testing::MockControl control;
    StrideEngine engine;

    explicit Rig(bool lazy)
        : engine(control, [&] {
              StrideEngineConfig cfg;
              cfg.quantum = kQuantum;
              cfg.lazy_measurement = lazy;
              return cfg;
          }()) {}

    void add(EntityId id, Share share) {
        control.ensure(id);
        engine.add(id, share);
    }

    /// One quantum of simulated machine time: the engine decides, then the
    /// "kernel" grants CPU to whatever it left runnable.
    void step() {
        engine.tick();
        control.run_kernel_quantum(kQuantum);
    }

    [[nodiscard]] EntityId runnable() const {
        for (const auto& [id, e] : control.entities) {
            if (!e.suspended) return id;
        }
        return -1;
    }
};

TEST(StrideLazy, ScheduleAndConsumptionMatchEagerExactly) {
    Rig eager(false);
    Rig lazy(true);
    // Power-of-two shares keep every stride and pass exactly representable,
    // so the two engines must agree bit-for-bit (a lazy window charges
    // window × stride in one add; an inexact stride would round that
    // differently than eager's per-tick adds and flip pass ties).
    for (Rig* r : {&eager, &lazy}) {
        r->add(1, 1);
        r->add(2, 4);
        r->add(3, 2);
    }

    // ~17 full cycles (total shares = 7); the runnable entity must agree at
    // every single quantum, and the per-entity CPU must agree at the end.
    for (int t = 0; t < 120; ++t) {
        eager.step();
        lazy.step();
        ASSERT_EQ(eager.runnable(), lazy.runnable()) << "tick " << t;
    }
    for (const auto& [id, e] : eager.control.entities) {
        EXPECT_EQ(e.cpu, lazy.control.entities.at(id).cpu) << "entity " << id;
    }
    EXPECT_EQ(eager.engine.cycles_completed(), lazy.engine.cycles_completed());
}

TEST(StrideLazy, SkipsMostReadsAndAllSignalsOnSkippedTicks) {
    Rig lazy(true);
    lazy.add(1, 1);
    lazy.add(2, 4);
    for (int t = 0; t < 120; ++t) lazy.step();

    EXPECT_GT(lazy.engine.lazy_ticks_skipped(), 0u);
    // Every tick either measured or skipped (the first has no incumbent).
    EXPECT_EQ(lazy.engine.total_measurements() + lazy.engine.lazy_ticks_skipped() + 1,
              lazy.engine.tick_count());
    // The eager engine reads once per tick; lazy must do materially better.
    EXPECT_LT(lazy.engine.total_measurements(), lazy.engine.tick_count() / 2);

    Rig eager(false);
    eager.add(1, 1);
    eager.add(2, 4);
    for (int t = 0; t < 120; ++t) eager.step();
    EXPECT_EQ(eager.engine.lazy_ticks_skipped(), 0u);
    EXPECT_LT(lazy.control.reads, eager.control.reads / 2);
    // Signal traffic is schedule changes only — identical either way.
    EXPECT_EQ(lazy.control.suspends, eager.control.suspends);
    EXPECT_EQ(lazy.control.resumes, eager.control.resumes);
}

TEST(StrideLazy, MembershipChangeInvalidatesTheSkipWindow) {
    Rig lazy(true);
    lazy.add(1, 1);
    lazy.add(2, 8);  // after tick 2 the runner holds a 7-tick window
    for (int t = 0; t < 3; ++t) lazy.step();
    ASSERT_GT(lazy.engine.lazy_ticks_skipped(), 0u);

    // The cached window is unsound the moment membership changes: the next
    // tick must measure again even though the old window said "skip".
    lazy.add(3, 50);
    auto before = lazy.engine.total_measurements();
    lazy.step();
    EXPECT_GT(lazy.engine.total_measurements(), before);

    lazy.engine.remove(3);
    before = lazy.engine.total_measurements();
    lazy.step();
    EXPECT_GT(lazy.engine.total_measurements(), before);
}

TEST(StrideLazy, FullSimExperimentKeepsAccuracyWithFarFewerReads) {
    workload::SimRunConfig cfg;
    // Like ALPS §2.3, the savings scale with how long one entity can hold
    // the CPU: a skewed ratio gives the big-share runner long windows.
    cfg.shares = {1, 15};
    cfg.warmup_cycles = 2;
    cfg.measure_cycles = 30;

    cfg.lazy_measurement = false;
    const auto eager = workload::run_stride_engine_experiment(cfg);
    cfg.lazy_measurement = true;
    const auto lazy = workload::run_stride_engine_experiment(cfg);

    ASSERT_FALSE(eager.timed_out);
    ASSERT_FALSE(lazy.timed_out);
    EXPECT_LT(lazy.measurements, eager.measurements / 2);
    EXPECT_LT(lazy.mean_rms_error, 0.05);
    // Fewer reads -> cheaper ticks -> the driver burns no more CPU.
    EXPECT_LE(lazy.alps_cpu, eager.alps_cpu);
}

}  // namespace
}  // namespace alps::core
