#include "alps/trace.h"

#include <gtest/gtest.h>

#include "alps/scheduler.h"
#include "mock_control.h"
#include "telemetry/metrics.h"
#include "util/assert.h"

namespace alps::core {
namespace {

using alps::testing::MockControl;
using util::msec;

constexpr auto kQ = msec(10);

SchedulerConfig config() {
    SchedulerConfig cfg;
    cfg.quantum = kQ;
    return cfg;
}

TEST(TickTraceWiring, RecordsMeasurementsAndTransitions) {
    MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 1);
    TraceLog log;
    sched.set_tick_observer([&](const TickTrace& t) { log.observe(t); });

    sched.tick();  // both become eligible
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log.traces()[0].tick, 1u);
    EXPECT_EQ(log.traces()[0].resumed, (std::vector<EntityId>{1, 2}));
    EXPECT_TRUE(log.traces()[0].measured.empty());  // were ineligible

    mc.entities[1].cpu += kQ * 2;  // overruns the whole cycle
    sched.tick();
    ASSERT_EQ(log.size(), 2u);
    const TickTrace& t = log.traces()[1];
    EXPECT_EQ(t.measured, (std::vector<EntityId>{1, 2}));
    EXPECT_EQ(t.suspended, (std::vector<EntityId>{1}));
    EXPECT_TRUE(t.cycle_completed);
    ASSERT_EQ(t.entities.size(), 2u);
    EXPECT_NEAR(t.allowances[0], 0.0, 1e-9);  // 1 - 2 + 1
    EXPECT_NEAR(t.allowances[1], 2.0, 1e-9);  // 1 - 0 + 1
}

TEST(TickTraceWiring, EmptySchedulerStillEmitsTickRows) {
    MockControl mc;
    Scheduler sched(mc, config());
    TraceLog log;
    sched.set_tick_observer([&](const TickTrace& t) { log.observe(t); });
    sched.tick();
    sched.tick();
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.traces()[1].tick, 2u);
    EXPECT_TRUE(log.traces()[1].entities.empty());
}

TEST(TickTraceWiring, NoObserverNoCrash) {
    MockControl mc;
    mc.ensure(1);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    for (int i = 0; i < 10; ++i) sched.tick();  // simply must not throw
    SUCCEED();
}

TEST(TraceLog, CapacityBoundsAndTruncationFlag) {
    TraceLog log(3);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TickTrace t;
        t.tick = i;
        log.observe(t);
    }
    EXPECT_EQ(log.size(), 3u);
    EXPECT_TRUE(log.truncated());
    EXPECT_EQ(log.traces().back().tick, 2u);
}

TEST(TraceLog, ZeroCapacityViolatesContract) {
    EXPECT_THROW(TraceLog(0), util::ContractViolation);
}

TEST(TraceLog, CsvRendersOneRowPerEntity) {
    TraceLog log;
    TickTrace t;
    t.tick = 7;
    t.cycle_completed = true;
    t.cycle_time_remaining = msec(30);
    t.entities = {4, 9};
    t.allowances = {1.5, -0.25};
    t.measured = {4};
    t.suspended = {9};
    log.observe(t);
    const std::string csv = log.to_csv();
    EXPECT_NE(csv.find("tick,entity,allowance"), std::string::npos);
    EXPECT_NE(csv.find("7,4,1.5,1,0,0,1,30"), std::string::npos);
    EXPECT_NE(csv.find("7,9,-0.25,0,1,0,1,30"), std::string::npos);
}

TEST(TraceLog, ExactlyAtCapacityIsNotTruncated) {
    TraceLog log(3);
    for (std::uint64_t i = 0; i < 3; ++i) {
        TickTrace t;
        t.tick = i;
        log.observe(t);
    }
    EXPECT_EQ(log.size(), 3u);
    EXPECT_FALSE(log.truncated());
}

TEST(TraceLog, TruncationKeepsTheEarliestTraces) {
    // The log is a prefix capture, not a ring: overflow drops the *new*
    // trace, so offline analysis always sees the experiment's start.
    TraceLog log(2);
    for (std::uint64_t i = 0; i < 6; ++i) {
        TickTrace t;
        t.tick = i;
        log.observe(t);
    }
    ASSERT_EQ(log.size(), 2u);
    EXPECT_TRUE(log.truncated());
    EXPECT_EQ(log.traces()[0].tick, 0u);
    EXPECT_EQ(log.traces()[1].tick, 1u);
}

TEST(TraceLog, CsvRowCountAtCapacity) {
    // One CSV row per (tick, entity): a truncated log renders exactly
    // capacity * entities_per_tick rows plus the header and the
    // dropped-ticks trailer, nothing from the dropped traces.
    TraceLog log(2);
    for (std::uint64_t i = 0; i < 5; ++i) {
        TickTrace t;
        t.tick = i;
        t.entities = {1, 2, 3};
        t.allowances = {0.5, 1.0, 1.5};
        log.observe(t);
    }
    const std::string csv = log.to_csv();
    std::size_t rows = 0;
    for (const char c : csv) {
        if (c == '\n') ++rows;
    }
    EXPECT_EQ(rows, 1u + 2u * 3u + 1u);  // header + capacity * entities + trailer
    EXPECT_NE(csv.find("0,1,0.5"), std::string::npos);
    EXPECT_NE(csv.find("1,3,1.5"), std::string::npos);
    EXPECT_EQ(csv.find("\n2,"), std::string::npos);  // tick 2 was dropped
}

TEST(TraceLog, DroppedTicksCountsEveryOverflowObservation) {
    TraceLog log(2);
    for (std::uint64_t i = 0; i < 7; ++i) {
        TickTrace t;
        t.tick = i;
        log.observe(t);
    }
    EXPECT_EQ(log.dropped_ticks(), 5u);
    EXPECT_TRUE(log.truncated());
    EXPECT_NE(log.to_csv().find("# dropped_ticks,5\n"), std::string::npos);
}

TEST(TraceLog, UntruncatedCsvHasNoDroppedTicksTrailer) {
    TraceLog log(4);
    TickTrace t;
    t.tick = 1;
    log.observe(t);
    EXPECT_EQ(log.dropped_ticks(), 0u);
    EXPECT_EQ(log.to_csv().find("# dropped_ticks"), std::string::npos);
}

TEST(TraceLog, RegistersDroppedTicksInMetricsRegistry) {
    TraceLog log(1);
    for (std::uint64_t i = 0; i < 4; ++i) {
        TickTrace t;
        t.tick = i;
        log.observe(t);
    }
    telemetry::MetricsRegistry reg;
    log.register_metrics(reg);
    EXPECT_EQ(reg.counter("trace_log.ticks_logged").value(), 1u);
    EXPECT_EQ(reg.counter("trace_log.dropped_ticks").value(), 3u);
}

TEST(TraceLog, CsvOfEmptyLogIsHeaderOnly) {
    TraceLog log(4);
    EXPECT_EQ(log.to_csv(), "tick,entity,allowance,measured,suspended,resumed,"
                            "cycle_completed,tc_ms,quarantined,dropped,faults\n");
}

TEST(TraceLog, EntityLessTicksRenderNoCsvRows) {
    TraceLog log;
    TickTrace t;
    t.tick = 1;  // no entities attached
    log.observe(t);
    TickTrace u;
    u.tick = 2;
    u.entities = {7};
    u.allowances = {1.0};
    log.observe(u);
    const std::string csv = log.to_csv();
    std::size_t rows = 0;
    for (const char c : csv) {
        if (c == '\n') ++rows;
    }
    EXPECT_EQ(rows, 2u);  // header + the single entity row from tick 2
    EXPECT_NE(csv.find("2,7,1"), std::string::npos);
}

TEST(TickTraceWiring, AllowanceConservationVisibleInTrace) {
    // The trace exposes the invariant: sum(allowance)*Q == t_c every tick.
    MockControl mc;
    for (EntityId id = 1; id <= 3; ++id) mc.ensure(id);
    Scheduler sched(mc, config());
    sched.add(1, 1);
    sched.add(2, 2);
    sched.add(3, 3);
    int checked = 0;
    sched.set_tick_observer([&](const TickTrace& t) {
        if (t.entities.empty()) return;
        double sum = 0.0;
        for (const double a : t.allowances) sum += a;
        EXPECT_NEAR(sum * static_cast<double>(kQ.count()),
                    static_cast<double>(t.cycle_time_remaining.count()),
                    1e-3 * static_cast<double>(kQ.count()));
        ++checked;
    });
    sched.tick();
    for (int i = 0; i < 200; ++i) {
        mc.run_kernel_quantum(kQ);
        sched.tick();
    }
    EXPECT_GT(checked, 100);
}

}  // namespace
}  // namespace alps::core
