// Harness subsystem tests: ThreadPool correctness (run these under TSan via
// scripts/check.sh), deterministic seed derivation, sink aggregation, and the
// load-bearing guarantee that a sweep's JSON metric payload is byte-identical
// for every worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>

#include "harness/registry.h"
#include "harness/result.h"
#include "harness/runner.h"
#include "harness/sink.h"
#include "harness/thread_pool.h"
#include "util/assert.h"
#include "util/rng.h"

namespace alps::harness {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
        pool.wait_idle();
        EXPECT_EQ(count.load(), 200);
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilAllTasksFinish) {
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
            done.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
        // No wait_idle: destruction must still run everything queued.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        count.fetch_add(1, std::memory_order_relaxed);
        for (int i = 0; i < 5; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
    });
    // wait_idle covers the nested submissions too: the parent task is
    // `active_` while it enqueues, so the pool never looks idle in between.
    pool.wait_idle();
    EXPECT_EQ(count.load(), 6);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran.store(true, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, UsesMultipleWorkerThreads) {
    ThreadPool pool(4);
    std::mutex mu;
    std::set<std::thread::id> seen;
    std::atomic<int> rendezvous{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&] {
            rendezvous.fetch_add(1, std::memory_order_relaxed);
            // Hold every worker until all four tasks are in flight, proving
            // four distinct threads executed concurrently.
            while (rendezvous.load(std::memory_order_relaxed) < 4) {
                std::this_thread::yield();
            }
            std::scoped_lock lock(mu);
            seen.insert(std::this_thread::get_id());
        });
    }
    pool.wait_idle();
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPool, NullTaskViolatesContract) {
    ThreadPool pool(1);
    EXPECT_THROW(pool.submit(nullptr), util::ContractViolation);
}

TEST(ThreadPool, ThrowingTaskIsCapturedAndSiblingsStillRun) {
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 60; ++i) {
        pool.submit([&ran, i] {
            if (i % 10 == 3) throw std::runtime_error("task blew up");
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    }
    pool.wait_idle();
    // One poisoned task per batch of ten; every sibling still completed and
    // the pool is still healthy enough to run more work.
    EXPECT_EQ(ran.load(), 54);
    EXPECT_EQ(pool.tasks_failed(), 6u);
    EXPECT_EQ(pool.tasks_executed(), 60u);
    const std::vector<std::string> errors = pool.take_task_errors();
    ASSERT_EQ(errors.size(), 6u);
    EXPECT_EQ(errors[0], "task blew up");
    EXPECT_TRUE(pool.take_task_errors().empty());  // drained

    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 55);
}

// ------------------------------------------------------------ seed derivation

TEST(SeedDerivation, StableAndDecorrelated) {
    EXPECT_EQ(derive_task_seed(1, 0), derive_task_seed(1, 0));
    EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(1, 1));
    EXPECT_NE(derive_task_seed(1, 0), derive_task_seed(2, 0));
    // Adjacent indices must produce well-mixed seeds, not consecutive ones.
    const std::uint64_t a = derive_task_seed(7, 10);
    const std::uint64_t b = derive_task_seed(7, 11);
    EXPECT_GT(a > b ? a - b : b - a, 1u << 20);
}

// ------------------------------------------------------------------ the sweep

Experiment tiny_experiment() {
    Experiment e;
    e.name = "tiny";
    e.description = "test experiment";
    e.make_tasks = [](const SweepOptions&) {
        std::vector<Task> tasks;
        for (int point = 0; point < 3; ++point) {
            for (int rep = 0; rep < 4; ++rep) {
                Task t;
                t.point = "p" + std::to_string(point);
                t.rep = rep;
                t.params = {{"point", std::to_string(point)}};
                t.fn = [point](const TaskContext& ctx) {
                    // Deterministic per-task value from the derived seed.
                    util::Rng rng(ctx.seed);
                    return Result{}
                        .metric("x", rng.next_double() + point)
                        .metric("index", static_cast<double>(ctx.index));
                };
                tasks.push_back(std::move(t));
            }
        }
        return tasks;
    };
    return e;
}

SweepReport run_tiny(unsigned jobs) {
    SweepOptions options;
    options.jobs = jobs;
    options.seed = 1234;
    options.quiet = true;
    return run_sweep(tiny_experiment(), options, nullptr);
}

TEST(Sweep, MetricPayloadIsByteIdenticalForAnyJobCount) {
    const std::string serial = report_to_json(run_tiny(1), false).dump(2);
    const std::string fanned = report_to_json(run_tiny(4), false).dump(2);
    const std::string wide = report_to_json(run_tiny(13), false).dump(2);
    EXPECT_EQ(serial, fanned);
    EXPECT_EQ(serial, wide);
}

TEST(Sweep, OutcomesStayInTaskIndexOrder) {
    const SweepReport report = run_tiny(8);
    ASSERT_EQ(report.tasks.size(), 12u);
    for (std::size_t i = 0; i < report.tasks.size(); ++i) {
        EXPECT_EQ(report.tasks[i].result.value_of("index"), static_cast<double>(i));
    }
}

TEST(Sweep, AggregatesMeanAndStdevAcrossReps) {
    const SweepReport report = run_tiny(4);
    ASSERT_EQ(report.points.size(), 3u);
    for (const PointAggregate& p : report.points) {
        EXPECT_EQ(p.reps, 4);
        ASSERT_FALSE(p.metrics.empty());
        const MetricAggregate& x = p.metrics[0];
        EXPECT_EQ(x.name, "x");
        EXPECT_EQ(x.n, 4u);
        EXPECT_GE(x.max, x.mean);
        EXPECT_LE(x.min, x.mean);
        EXPECT_GT(x.stdev, 0.0);  // four distinct seeds -> spread
    }
    // Cross-check one mean by hand.
    const SweepReport& r = report;
    double sum = 0.0;
    for (const TaskOutcome& t : r.tasks) {
        if (t.point == "p1") sum += t.result.value_of("x");
    }
    EXPECT_NEAR(r.metric_mean("p1", "x"), sum / 4.0, 1e-12);
}

TEST(Sweep, TaskExceptionIsRecordedNotFatal) {
    Experiment e;
    e.name = "throwing";
    e.make_tasks = [](const SweepOptions&) {
        std::vector<Task> tasks;
        for (int i = 0; i < 3; ++i) {
            Task t;
            t.point = "p" + std::to_string(i);
            t.fn = [i](const TaskContext&) -> Result {
                if (i == 1) throw std::runtime_error("boom");
                return Result{}.metric("ok", 1.0);
            };
            tasks.push_back(std::move(t));
        }
        return tasks;
    };
    SweepOptions options;
    options.jobs = 2;
    options.quiet = true;
    const SweepReport report = run_sweep(e, options, nullptr);
    EXPECT_EQ(report.task_errors, 1);
    EXPECT_FALSE(report.tasks[1].ok);
    EXPECT_EQ(report.tasks[1].error, "boom");
    EXPECT_EQ(report.points.size(), 2u);  // failed task contributes no point
    const std::string json = report_to_json(report, false).dump(0);
    EXPECT_NE(json.find("\"task_errors\""), std::string::npos);
}

TEST(Sweep, FailedChecksAreCountedAndSerialized) {
    Experiment e;
    e.name = "checked";
    e.make_tasks = [](const SweepOptions&) {
        Task t;
        t.point = "gate";
        t.fn = [](const TaskContext&) {
            return Result{}
                .check("criterion A", "1", "1", true)
                .check("criterion B", "2", "3", false);
        };
        return std::vector<Task>{std::move(t)};
    };
    SweepOptions options;
    options.jobs = 1;
    options.quiet = true;
    const SweepReport report = run_sweep(e, options, nullptr);
    EXPECT_EQ(report.failed_checks, 1);
    const std::string json = report_to_json(report, false).dump(0);
    EXPECT_NE(json.find("criterion B"), std::string::npos);
    EXPECT_NE(json.find("\"passed\":false"), std::string::npos);
}

TEST(Sweep, RunSectionCarriesJobsAndWallClock) {
    const SweepReport report = run_tiny(2);
    EXPECT_EQ(report.jobs, 2u);
    EXPECT_GE(report.wall_seconds, 0.0);
    const std::string with_run = report_to_json(report, true).dump(0);
    EXPECT_NE(with_run.find("\"jobs\":2"), std::string::npos);
    EXPECT_NE(with_run.find("\"wall_clock_s\""), std::string::npos);
    const std::string without = report_to_json(report, false).dump(0);
    EXPECT_EQ(without.find("\"run\""), std::string::npos);
}

// -------------------------------------------------------------------- registry

TEST(Registry, FindAndSortedList) {
    ExperimentRegistry registry;  // local instance; the singleton is for mains
    Experiment b;
    b.name = "bbb";
    b.make_tasks = [](const SweepOptions&) { return std::vector<Task>{}; };
    Experiment a;
    a.name = "aaa";
    a.make_tasks = [](const SweepOptions&) { return std::vector<Task>{}; };
    registry.add(std::move(b));
    registry.add(std::move(a));
    EXPECT_NE(registry.find("aaa"), nullptr);
    EXPECT_EQ(registry.find("zzz"), nullptr);
    const auto list = registry.list();
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0]->name, "aaa");
    EXPECT_EQ(list[1]->name, "bbb");
}

TEST(Registry, DuplicateNameViolatesContract) {
    ExperimentRegistry registry;
    Experiment e;
    e.name = "dup";
    e.make_tasks = [](const SweepOptions&) { return std::vector<Task>{}; };
    registry.add(e);
    EXPECT_THROW(registry.add(e), util::ContractViolation);
}

}  // namespace
}  // namespace alps::harness
