// Supervision-layer tests: the checksummed wire format, the crash-consistent
// sweep journal, --resume determinism, --only-task repro mode, and (where the
// sanitizer allows fork) the RunSupervisor's isolation, retry, watchdog, and
// forensics behaviour.
//
// The fork-based tests are skipped under ThreadSanitizer: TSan's runtime does
// not support forking from a multithreaded process (the sweep pool), and the
// supervisor's own design notes call this out — CI covers isolation in the
// ASan and Release legs instead.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "harness/journal.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/sink.h"
#include "harness/supervisor.h"
#include "harness/wire.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace_file.h"
#include "util/assert.h"
#include "util/rng.h"

#if defined(__SANITIZE_THREAD__)
#define ALPS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ALPS_TSAN_BUILD 1
#endif
#endif

namespace alps::harness {
namespace {

// ----- helpers -------------------------------------------------------------

/// Unique scratch directory, removed on destruction.
class TempDir {
public:
    explicit TempDir(const std::string& stem) {
        static std::atomic<int> counter{0};
        path_ = (std::filesystem::path(::testing::TempDir()) /
                 (stem + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter.fetch_add(1))))
                    .string();
        std::filesystem::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    [[nodiscard]] const std::string& str() const { return path_; }

private:
    std::string path_;
};

/// The supervisor's worker-process environment contract (mirrors the
/// chaos_campaign experiment): >= 0 only inside an isolated attempt.
int attempt_from_env() {
    const char* attempt = std::getenv("ALPS_HARNESS_ATTEMPT");
    if (attempt == nullptr || std::getenv("ALPS_HARNESS_ISOLATED") == nullptr) {
        return -1;
    }
    return std::atoi(attempt);
}

TaskOutcome sample_outcome(int salt) {
    TaskOutcome out;
    out.point = "p" + std::to_string(salt);
    out.rep = salt;
    out.params = {{"alpha", "a" + std::to_string(salt)}, {"beta", "b"}};
    out.result.metric("third", 1.0 / 3.0)
        .metric("tenth", 0.1 * salt)
        .metric("neg_zero", -0.0)
        .metric("denormal", std::numeric_limits<double>::denorm_min())
        .metric("huge", 1e308 + salt);
    out.result.check("criterion", "want", "got" + std::to_string(salt), salt % 2 == 0);
    out.ok = salt % 3 != 0;
    out.error = out.ok ? "" : "err " + std::to_string(salt);
    out.attempts = 1 + salt % 3;
    out.disposition = out.ok ? "ok" : "crashed";
    return out;
}

std::uint64_t bits_of(double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

void expect_outcomes_bit_equal(const TaskOutcome& a, const TaskOutcome& b) {
    EXPECT_EQ(a.point, b.point);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.attempts, b.attempts);
    EXPECT_EQ(a.disposition, b.disposition);
    ASSERT_EQ(a.result.metrics().size(), b.result.metrics().size());
    for (std::size_t i = 0; i < a.result.metrics().size(); ++i) {
        EXPECT_EQ(a.result.metrics()[i].name, b.result.metrics()[i].name);
        EXPECT_EQ(bits_of(a.result.metrics()[i].value),
                  bits_of(b.result.metrics()[i].value));
    }
    ASSERT_EQ(a.result.checks().size(), b.result.checks().size());
    for (std::size_t i = 0; i < a.result.checks().size(); ++i) {
        EXPECT_EQ(a.result.checks()[i].criterion, b.result.checks()[i].criterion);
        EXPECT_EQ(a.result.checks()[i].passed, b.result.checks()[i].passed);
    }
}

// ----- wire format ----------------------------------------------------------

TEST(Wire, FrameRoundTripTornTailAndBitFlip) {
    std::string buf;
    wire::append_frame(buf, "hello");
    wire::append_frame(buf, "world!");

    std::string_view payload;
    std::size_t next = 0;
    ASSERT_EQ(wire::extract_frame(buf, 0, payload, next), wire::FrameStatus::kOk);
    EXPECT_EQ(payload, "hello");
    ASSERT_EQ(wire::extract_frame(buf, next, payload, next), wire::FrameStatus::kOk);
    EXPECT_EQ(payload, "world!");
    EXPECT_EQ(next, buf.size());
    // Exactly at end: a stream would keep reading.
    EXPECT_EQ(wire::extract_frame(buf, next, payload, next),
              wire::FrameStatus::kNeedMore);

    // A torn final append is kNeedMore (discardable tail), not corruption.
    const std::size_t second_frame = wire::kFrameHeaderBytes + 5;  // after "hello"
    EXPECT_EQ(wire::extract_frame(std::string_view(buf).substr(0, buf.size() - 3),
                                  second_frame, payload, next),
              wire::FrameStatus::kNeedMore);

    // Any flipped payload bit fails the checksum.
    std::string flipped = buf;
    flipped[wire::kFrameHeaderBytes + 1] ^= 0x10;
    EXPECT_EQ(wire::extract_frame(flipped, 0, payload, next),
              wire::FrameStatus::kCorrupt);
}

TEST(Wire, OutcomeRoundTripsBitExactly) {
    for (int salt = 0; salt < 4; ++salt) {
        const TaskOutcome original = sample_outcome(salt);
        const auto wire_index = static_cast<std::uint64_t>(77 + salt);
        const std::string payload = wire::encode_outcome(wire_index, original);

        std::uint64_t index = 0;
        TaskOutcome decoded;
        ASSERT_TRUE(wire::decode_outcome(payload, index, decoded));
        EXPECT_EQ(index, wire_index);
        expect_outcomes_bit_equal(original, decoded);
        // Re-encoding the decoded outcome reproduces the exact bytes — the
        // property resume determinism rests on.
        EXPECT_EQ(wire::encode_outcome(wire_index, decoded), payload);
    }
}

TEST(Wire, DecodeRejectsTruncatedAndTrailingBytes) {
    const std::string payload = wire::encode_outcome(3, sample_outcome(1));
    std::uint64_t index = 0;
    TaskOutcome out;
    EXPECT_FALSE(wire::decode_outcome(payload.substr(0, payload.size() - 1), index, out));
    EXPECT_FALSE(wire::decode_outcome(payload + "x", index, out));
    EXPECT_FALSE(wire::decode_outcome("", index, out));
}

// ----- journal --------------------------------------------------------------

JournalHeader test_header(std::uint64_t tasks) {
    JournalHeader h;
    h.experiment = "jtest";
    h.seed = 42;
    h.full_scale = false;
    h.kernel_policy = "bsd";
    h.task_count = tasks;
    return h;
}

TEST(Journal, AppendLoadRoundTripInAnyOrder) {
    TempDir dir("journal_rt");
    const std::string path = SweepJournal::path_for(dir.str(), "jtest");

    SweepJournal journal;
    journal.open(path, test_header(3), 0);
    ASSERT_TRUE(journal.is_open());
    journal.append(2, sample_outcome(2));
    journal.append(0, sample_outcome(0));
    journal.append(1, sample_outcome(1));
    journal.close();

    const LoadedJournal loaded = SweepJournal::load(path);
    ASSERT_TRUE(loaded.found);
    EXPECT_TRUE(loaded.header.matches(test_header(3)));
    EXPECT_FALSE(loaded.header.matches(test_header(4)));
    EXPECT_EQ(loaded.discarded_bytes, 0u);
    ASSERT_EQ(loaded.outcomes.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        expect_outcomes_bit_equal(loaded.outcomes.at(static_cast<std::uint64_t>(i)),
                                  sample_outcome(i));
    }
}

TEST(Journal, TornTailIsDiscardedAndAppendableAfterTruncation) {
    TempDir dir("journal_tear");
    const std::string path = SweepJournal::path_for(dir.str(), "jtest");
    {
        SweepJournal journal;
        journal.open(path, test_header(3), 0);
        journal.append(0, sample_outcome(0));
        journal.append(1, sample_outcome(1));
    }
    // kill -9 mid-append: the file ends inside the final frame.
    const auto full_size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full_size - 5);

    const LoadedJournal torn = SweepJournal::load(path);
    ASSERT_TRUE(torn.found);
    EXPECT_EQ(torn.outcomes.size(), 1u);
    EXPECT_EQ(torn.discarded_bytes, full_size - 5 - torn.valid_bytes);
    EXPECT_GT(torn.discarded_bytes, 0u);

    // Resume path: truncate to the valid prefix, append the re-run.
    {
        SweepJournal journal;
        journal.open(path, test_header(3), torn.valid_bytes);
        journal.append(1, sample_outcome(1));
        journal.append(2, sample_outcome(2));
    }
    const LoadedJournal healed = SweepJournal::load(path);
    ASSERT_TRUE(healed.found);
    EXPECT_EQ(healed.outcomes.size(), 3u);
    EXPECT_EQ(healed.discarded_bytes, 0u);
}

TEST(Journal, BitFlipInvalidatesSuffixOnly) {
    TempDir dir("journal_flip");
    const std::string path = SweepJournal::path_for(dir.str(), "jtest");
    {
        SweepJournal journal;
        journal.open(path, test_header(3), 0);
        for (int i = 0; i < 3; ++i) {
            journal.append(static_cast<std::uint64_t>(i), sample_outcome(i));
        }
    }
    std::string data;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        data = ss.str();
    }
    std::string flipped = data;
    flipped[flipped.size() / 2] ^= 0x04;  // inside the middle record
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << flipped;
    }
    const LoadedJournal loaded = SweepJournal::load(path);
    ASSERT_TRUE(loaded.found);
    EXPECT_LT(loaded.outcomes.size(), 3u);
    EXPECT_GT(loaded.discarded_bytes, 0u);
}

TEST(Journal, CorruptHeaderMeansNoJournal) {
    TempDir dir("journal_hdr");
    const std::string path = SweepJournal::path_for(dir.str(), "jtest");
    {
        SweepJournal journal;
        journal.open(path, test_header(3), 0);
        journal.append(0, sample_outcome(0));
    }
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);  // inside the header frame
    f.put('\xee');
    f.close();
    const LoadedJournal loaded = SweepJournal::load(path);
    EXPECT_FALSE(loaded.found);
    EXPECT_TRUE(loaded.outcomes.empty());

    EXPECT_FALSE(SweepJournal::load(dir.str() + "/missing.journal").found);
}

// ----- sweep resume ---------------------------------------------------------

/// 8-task experiment whose metrics are pure functions of the derived seed;
/// `executions` counts real task-fn invocations (resumed slots must not run).
Experiment counting_experiment(std::atomic<int>* executions) {
    Experiment e;
    e.name = "tiny_sup";
    e.description = "supervision test experiment";
    e.make_tasks = [executions](const SweepOptions&) {
        std::vector<Task> tasks;
        for (int point = 0; point < 4; ++point) {
            for (int rep = 0; rep < 2; ++rep) {
                Task t;
                t.point = "p" + std::to_string(point);
                t.rep = rep;
                t.params = {{"point", std::to_string(point)}};
                t.fn = [executions](const TaskContext& ctx) {
                    if (executions != nullptr) {
                        executions->fetch_add(1, std::memory_order_relaxed);
                    }
                    util::Rng rng(ctx.seed);
                    return Result{}
                        .metric("x", rng.next_double())
                        .metric("seed_lo",
                                static_cast<double>(ctx.seed & 0xffffffffULL))
                        .metric("index", static_cast<double>(ctx.index));
                };
                tasks.push_back(std::move(t));
            }
        }
        return tasks;
    };
    return e;
}

TEST(SweepResume, SkipsJournaledTasksAndPayloadIsByteIdentical) {
    std::atomic<int> executions{0};
    const Experiment experiment = counting_experiment(&executions);

    SweepOptions base;
    base.jobs = 2;
    base.seed = 905;
    base.quiet = true;
    const SweepReport baseline = run_sweep(experiment, base, nullptr);
    const std::string baseline_payload = report_to_json(baseline, false).dump(2);
    ASSERT_EQ(executions.load(), 8);

    for (const unsigned jobs : {1u, 3u, 8u}) {
        TempDir dir("resume_jobs" + std::to_string(jobs));
        // A sweep died after completing tasks 0, 1, 2, and 5.
        JournalHeader header;
        header.experiment = experiment.name;
        header.seed = base.seed;
        header.full_scale = false;
        header.kernel_policy = "";
        header.task_count = 8;
        {
            SweepJournal journal;
            journal.open(SweepJournal::path_for(dir.str(), experiment.name), header, 0);
            for (const std::uint64_t i : {0u, 1u, 2u, 5u}) {
                journal.append(i, baseline.tasks[i]);
            }
        }

        executions.store(0);
        SweepOptions options = base;
        options.jobs = jobs;
        options.resume = true;
        options.out_dir = dir.str();
        const SweepReport resumed = run_sweep(experiment, options, nullptr);
        EXPECT_EQ(executions.load(), 4) << "resumed tasks must not re-run";
        EXPECT_EQ(report_to_json(resumed, false).dump(2), baseline_payload);
        const std::string telemetry = resumed.telemetry.dump(0);
        EXPECT_NE(telemetry.find("\"harness.journal_resumes\":4"), std::string::npos)
            << telemetry;

        // The journal now covers the whole sweep: a second resume runs nothing
        // and still reproduces the payload.
        executions.store(0);
        const SweepReport again = run_sweep(experiment, options, nullptr);
        EXPECT_EQ(executions.load(), 0);
        EXPECT_EQ(report_to_json(again, false).dump(2), baseline_payload);
    }
}

TEST(SweepResume, MismatchedJournalHeaderThrows) {
    std::atomic<int> executions{0};
    const Experiment experiment = counting_experiment(&executions);
    TempDir dir("resume_mismatch");

    JournalHeader header;
    header.experiment = experiment.name;
    header.seed = 111;  // journal from a different seed
    header.task_count = 8;
    {
        SweepJournal journal;
        journal.open(SweepJournal::path_for(dir.str(), experiment.name), header, 0);
    }

    SweepOptions options;
    options.jobs = 1;
    options.seed = 905;
    options.quiet = true;
    options.resume = true;
    options.out_dir = dir.str();
    EXPECT_THROW(run_sweep(experiment, options, nullptr), std::runtime_error);
}

TEST(Sweep, OnlyTaskKeepsOriginalIndexAndSeed) {
    std::atomic<int> executions{0};
    const Experiment experiment = counting_experiment(&executions);

    SweepOptions base;
    base.jobs = 2;
    base.seed = 906;
    base.quiet = true;
    const SweepReport baseline = run_sweep(experiment, base, nullptr);

    SweepOptions repro = base;
    repro.only_task = 5;
    executions.store(0);
    const SweepReport single = run_sweep(experiment, repro, nullptr);
    EXPECT_EQ(executions.load(), 1);
    ASSERT_EQ(single.tasks.size(), 1u);
    EXPECT_EQ(single.tasks[0].point, baseline.tasks[5].point);
    EXPECT_EQ(single.tasks[0].rep, baseline.tasks[5].rep);
    EXPECT_EQ(bits_of(single.tasks[0].result.value_of("x")),
              bits_of(baseline.tasks[5].result.value_of("x")));
    EXPECT_EQ(single.tasks[0].result.value_of("index"), 5.0);

    repro.only_task = 99;
    EXPECT_THROW(run_sweep(experiment, repro, nullptr), std::runtime_error);
}

// ----- isolation (fork) -----------------------------------------------------

#ifdef ALPS_TSAN_BUILD
#define ALPS_SKIP_UNDER_TSAN() \
    GTEST_SKIP() << "fork-based isolation is unsupported under TSan"
#else
#define ALPS_SKIP_UNDER_TSAN() (void)0
#endif

TEST(SupervisorIsolated, CleanIsolatedPayloadMatchesInline) {
    ALPS_SKIP_UNDER_TSAN();
    const Experiment experiment = counting_experiment(nullptr);
    SweepOptions options;
    options.jobs = 2;
    options.seed = 907;
    options.quiet = true;
    const std::string inline_payload =
        report_to_json(run_sweep(experiment, options, nullptr), false).dump(2);

    TempDir dir("iso_clean");
    options.isolate = true;
    options.out_dir = dir.str();
    const SweepReport isolated = run_sweep(experiment, options, nullptr);
    EXPECT_EQ(report_to_json(isolated, false).dump(2), inline_payload);
    for (const TaskOutcome& t : isolated.tasks) {
        EXPECT_TRUE(t.ok);
        EXPECT_EQ(t.attempts, 1);
        EXPECT_EQ(t.disposition, "ok");
    }
}

/// One task misbehaves per the given mode (under the env contract only);
/// three siblings stay clean.
Experiment faulty_experiment(const std::string& mode) {
    Experiment e;
    e.name = "faulty";
    e.tolerate_task_errors = true;
    e.make_tasks = [mode](const SweepOptions&) {
        std::vector<Task> tasks;
        for (int i = 0; i < 4; ++i) {
            Task t;
            t.point = (i == 1 ? "victim" : "sibling" + std::to_string(i));
            t.fn = [mode, i](const TaskContext& ctx) {
                if (i == 1) {
                    const int attempt = attempt_from_env();
                    if (mode == "flaky" && attempt == 0) std::abort();
                    if (mode == "always" && attempt >= 0) std::abort();
                    if (mode == "guard" && attempt >= 0) ALPS_GUARD(1 + 1 == 3);
                    if (mode == "cpu_guard" && attempt >= 0) {
                        // A real corruption guard, not a synthetic condition:
                        // the kernel's per-CPU accessors bounds-check their
                        // cpu index under ALPS_GUARD, and a chaos task that
                        // trips one must be classified exactly like any other
                        // SIGABRT.
                        sim::Engine engine;
                        os::Kernel kernel(engine, nullptr,
                                          os::KernelConfig{.ncpus = 2});
                        (void)kernel.running_pid_on(2);
                    }
                    if (mode == "throw") {
                        throw std::invalid_argument("bad chaos input");
                    }
                }
                util::Rng rng(ctx.seed);
                return Result{}.metric("x", rng.next_double());
            };
            tasks.push_back(std::move(t));
        }
        return tasks;
    };
    return e;
}

SweepReport run_faulty(const std::string& mode, const TempDir& dir,
                       int max_attempts = 3) {
    SweepOptions options;
    options.jobs = 2;
    options.seed = 908;
    options.quiet = true;
    options.isolate = true;
    options.max_attempts = max_attempts;
    options.out_dir = dir.str();
    return run_sweep(faulty_experiment(mode), options, nullptr);
}

TEST(SupervisorIsolated, TransientCrashIsRetriedToSuccess) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_flaky");
    const SweepReport report = run_faulty("flaky", dir);
    ASSERT_EQ(report.tasks.size(), 4u);
    const TaskOutcome& victim = report.tasks[1];
    EXPECT_TRUE(victim.ok);
    EXPECT_EQ(victim.attempts, 2);
    EXPECT_EQ(victim.disposition, "ok");
    const std::string telemetry = report.telemetry.dump(0);
    EXPECT_NE(telemetry.find("\"harness.runs_retried\":1"), std::string::npos);
    EXPECT_NE(telemetry.find("\"harness.runs_quarantined\":0"), std::string::npos);
}

TEST(SupervisorIsolated, PersistentCrashIsQuarantinedAndSiblingsComplete) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_loop");
    const SweepReport report = run_faulty("always", dir);
    ASSERT_EQ(report.tasks.size(), 4u);
    const TaskOutcome& victim = report.tasks[1];
    EXPECT_FALSE(victim.ok);
    EXPECT_EQ(victim.attempts, 3);
    EXPECT_EQ(victim.disposition, "crashed");
    EXPECT_NE(victim.error.find("signal"), std::string::npos) << victim.error;
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_TRUE(report.tasks[i].ok) << "sibling " << i << " poisoned";
    }
    EXPECT_EQ(report.task_errors, 1);
    const std::string telemetry = report.telemetry.dump(0);
    EXPECT_NE(telemetry.find("\"harness.runs_quarantined\":1"), std::string::npos);
}

TEST(SupervisorIsolated, GuardAbortIsClassifiedAsCrash) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_guard");
    const SweepReport report = run_faulty("guard", dir, /*max_attempts=*/2);
    const TaskOutcome& victim = report.tasks[1];
    EXPECT_FALSE(victim.ok);
    EXPECT_EQ(victim.disposition, "crashed");
    EXPECT_EQ(victim.attempts, 2);
}

TEST(SupervisorIsolated, KernelCpuBoundsGuardIsQuarantinedWithRepro) {
    ALPS_SKIP_UNDER_TSAN();
    // End-to-end forensics on the kernel's own cpu-index guard: a task that
    // reads running_pid_on(ncpus) aborts via ALPS_GUARD in the worker
    // process, the supervisor quarantines it after max_attempts, siblings
    // survive, and the outcome carries the signal-death evidence a repro
    // command needs.
    TempDir dir("iso_cpu_guard");
    const SweepReport report = run_faulty("cpu_guard", dir, /*max_attempts=*/2);
    ASSERT_EQ(report.tasks.size(), 4u);
    const TaskOutcome& victim = report.tasks[1];
    EXPECT_FALSE(victim.ok);
    EXPECT_EQ(victim.disposition, "crashed");
    EXPECT_EQ(victim.attempts, 2);
    EXPECT_NE(victim.error.find("signal"), std::string::npos) << victim.error;
    for (const std::size_t i : {0u, 2u, 3u}) {
        EXPECT_TRUE(report.tasks[i].ok) << "sibling " << i << " poisoned";
    }
}

TEST(SupervisorIsolated, DeterministicExceptionIsNotRetried) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_throw");
    const SweepReport report = run_faulty("throw", dir);
    const TaskOutcome& victim = report.tasks[1];
    EXPECT_FALSE(victim.ok);
    EXPECT_EQ(victim.attempts, 1);  // retrying a pure function cannot help
    EXPECT_EQ(victim.disposition, "failed");
    EXPECT_EQ(victim.error, "bad chaos input");
}

TEST(SupervisorIsolated, WatchdogKillsStalledRunAndForensicsHasRepro) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_stall");

    SupervisorConfig cfg;
    cfg.isolate = true;
    cfg.run_timeout_s = 0.3;
    cfg.max_attempts = 1;
    cfg.forensics_dir = dir.str();
    ReproInfo repro;
    repro.experiment = "stall_exp";
    repro.seed = 99;
    telemetry::MetricsRegistry metrics;
    std::ostringstream forensics;
    const RunSupervisor supervisor(cfg, repro, &metrics, &forensics);

    Task task;
    task.point = "stall";
    task.fn = [](const TaskContext&) {
        for (int i = 0; i < 3000; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return Result{};
    };
    TaskContext ctx;
    ctx.index = 7;
    const TaskOutcome out = supervisor.run(task, ctx);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.disposition, "timeout");
    EXPECT_EQ(out.attempts, 1);
    EXPECT_NE(out.error.find("watchdog"), std::string::npos) << out.error;
    EXPECT_EQ(metrics.counter("harness.watchdog_kills").value(), 1u);
    EXPECT_EQ(metrics.counter("harness.runs_quarantined").value(), 1u);

    const std::string bundle = forensics.str();
    EXPECT_NE(bundle.find("run death"), std::string::npos) << bundle;
    EXPECT_NE(bundle.find("--only-task 7"), std::string::npos) << bundle;
    EXPECT_NE(bundle.find("alps-sweep --experiment stall_exp --seed 99"),
              std::string::npos)
        << bundle;
    EXPECT_EQ(supervisor.repro_command(7),
              "alps-sweep --experiment stall_exp --seed 99 --only-task 7 "
              "--isolate --max-attempts 1 --run-timeout 0.3");
}

TEST(SupervisorIsolated, CrashLeavesFlightRecorderDump) {
    ALPS_SKIP_UNDER_TSAN();
    TempDir dir("iso_dump");

    SupervisorConfig cfg;
    cfg.isolate = true;
    cfg.max_attempts = 1;
    cfg.forensics_dir = dir.str();
    ReproInfo repro;
    repro.experiment = "dump_exp";
    telemetry::MetricsRegistry metrics;
    std::ostringstream forensics;
    const RunSupervisor supervisor(cfg, repro, &metrics, &forensics);

    Task task;
    task.point = "dumper";
    task.fn = [](const TaskContext&) -> Result {
        // The supervisor attaches a wrap-mode session in the worker, so this
        // telemetry lands in the flight recorder's rings before the crash.
        for (std::uint64_t i = 0; i < 50; ++i) {
            telemetry::set_now_ns(i);
            telemetry::instant(telemetry::kNameTick, 0, i);
        }
        std::abort();
    };
    TaskContext ctx;
    ctx.index = 3;
    const TaskOutcome out = supervisor.run(task, ctx);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.disposition, "crashed");

    const std::string trace_path = dir.str() + "/dump_exp_task3_attempt1.alpstrace";
    ASSERT_TRUE(std::filesystem::exists(trace_path))
        << "forensics bundle: " << forensics.str();
    const telemetry::TraceFile trace = telemetry::read_trace_file(trace_path);
    ASSERT_EQ(trace.records.size(), 50u);
    EXPECT_EQ(trace.records.front().scope, 3u);  // scoped to the task index
    EXPECT_NE(forensics.str().find(trace_path), std::string::npos);
}

}  // namespace
}  // namespace alps::harness
