// Failure injection: processes dying (or being killed) while under ALPS
// control, workers churning inside group principals, and ALPS teardown
// mid-flight. The scheduler must adapt, renormalize, and never leave a
// process SIGSTOPped.
#include <gtest/gtest.h>

#include <memory>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::core {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct Machine {
    sim::Engine engine;
    os::Kernel kernel{engine};
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

SchedulerConfig config() {
    SchedulerConfig cfg;
    cfg.quantum = msec(10);
    return cfg;
}

TEST(FailureInjection, DeadProcessIsDroppedAndSharesRenormalize) {
    Machine m;
    SimAlps alps(m.kernel, config());
    const os::Pid a = m.kernel.spawn("a", 0, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid b = m.kernel.spawn("b", 0, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid c = m.kernel.spawn("c", 0, std::make_unique<os::CpuBoundBehavior>());
    alps.manage(a, 1);
    alps.manage(b, 1);
    alps.manage(c, 2);
    m.run_for(sec(5));

    // c dies (externally killed). ALPS discovers it at a measurement and
    // drops it; a and b then split the machine 1:1.
    m.kernel.send_signal(c, os::Signal::kKill);
    m.run_for(sec(1));  // discovery
    EXPECT_FALSE(alps.scheduler().contains(c));
    EXPECT_EQ(alps.scheduler().total_shares(), 2);

    const Duration a0 = m.kernel.cpu_time(a);
    const Duration b0 = m.kernel.cpu_time(b);
    m.run_for(sec(10));
    const double da = to_sec(m.kernel.cpu_time(a) - a0);
    const double db = to_sec(m.kernel.cpu_time(b) - b0);
    EXPECT_NEAR(da / (da + db), 0.5, 0.03);
    EXPECT_NEAR(da + db, 10.0, 0.5);  // the freed share is reused, not lost
}

TEST(FailureInjection, SuspendedProcessDyingIsEventuallyDropped) {
    Machine m;
    SimAlps alps(m.kernel, config());
    const os::Pid a = m.kernel.spawn("a", 0, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid b = m.kernel.spawn("b", 0, std::make_unique<os::CpuBoundBehavior>());
    alps.manage(a, 1);
    alps.manage(b, 9);
    m.run_for(sec(2));
    // Kill a while it is (very likely) suspended mid-cycle; ALPS only sees
    // eligible entities, so discovery happens at its next eligible
    // measurement after a cycle refill.
    m.kernel.send_signal(a, os::Signal::kKill);
    m.run_for(sec(3));
    EXPECT_FALSE(alps.scheduler().contains(a));
    EXPECT_EQ(alps.scheduler().total_shares(), 9);
}

TEST(FailureInjection, FiniteWorkloadsDrainCleanly) {
    Machine m;
    SimAlps alps(m.kernel, config());
    const os::Pid a =
        m.kernel.spawn("a", 0, std::make_unique<os::FiniteCpuBehavior>(sec(1)));
    const os::Pid b =
        m.kernel.spawn("b", 0, std::make_unique<os::FiniteCpuBehavior>(sec(1)));
    const os::Pid c = m.kernel.spawn("c", 0, std::make_unique<os::CpuBoundBehavior>());
    alps.manage(a, 2);
    alps.manage(b, 2);
    alps.manage(c, 1);
    // a and b each need 1 s of CPU; with shares 2:2:1 they finish and exit;
    // c then owns the machine.
    m.run_for(sec(6));
    EXPECT_FALSE(m.kernel.alive(a));
    EXPECT_FALSE(m.kernel.alive(b));
    EXPECT_EQ(alps.scheduler().size(), 1u);
    const Duration c0 = m.kernel.cpu_time(c);
    m.run_for(sec(2));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(c) - c0), 2.0, 0.1);
}

TEST(FailureInjection, AlpsTeardownLeavesNothingStopped) {
    Machine m;
    std::array<os::Pid, 3> pids{};
    {
        SimAlps alps(m.kernel, config());
        for (int i = 0; i < 3; ++i) {
            pids[static_cast<std::size_t>(i)] =
                m.kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
            alps.manage(pids[static_cast<std::size_t>(i)], i + 1);
        }
        m.run_for(sec(2));
        // At least one process is suspended mid-cycle at any instant with
        // these shares; the destructor must release it.
    }
    for (const os::Pid pid : pids) {
        EXPECT_FALSE(m.kernel.proc(pid).stopped) << pid;
    }
    // Without ALPS the kernel shares equally again.
    std::array<Duration, 3> base{};
    for (int i = 0; i < 3; ++i) {
        base[static_cast<std::size_t>(i)] =
            m.kernel.cpu_time(pids[static_cast<std::size_t>(i)]);
    }
    m.run_for(sec(6));
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(to_sec(m.kernel.cpu_time(pids[static_cast<std::size_t>(i)]) -
                           base[static_cast<std::size_t>(i)]),
                    2.0, 0.4);
    }
}

TEST(FailureInjection, GroupPrincipalSurvivesTotalMemberLoss) {
    Machine m;
    SimGroupAlps alps(m.kernel, config());
    const os::Pid a = m.kernel.spawn("a", 500, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid other =
        m.kernel.spawn("x", 600, std::make_unique<os::CpuBoundBehavior>());
    alps.manage_user("u500", 500, 1);
    alps.manage_user("u600", 600, 1);
    m.run_for(sec(3));

    // All of u500's processes die; its principal empties but persists, and
    // u600 takes the whole machine (an empty principal reads as blocked, so
    // cycles keep completing).
    m.kernel.send_signal(a, os::Signal::kKill);
    m.run_for(sec(2));
    const Duration other0 = m.kernel.cpu_time(other);
    m.run_for(sec(4));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(other) - other0), 4.0, 0.2);

    // The user comes back: a new process appears and the 1 s membership
    // refresh reattaches it; sharing returns to ~1:1.
    const os::Pid a2 =
        m.kernel.spawn("a2", 500, std::make_unique<os::CpuBoundBehavior>());
    m.run_for(sec(2));  // refresh + re-stabilize
    const Duration a2_base = m.kernel.cpu_time(a2);
    const Duration other_base = m.kernel.cpu_time(other);
    m.run_for(sec(8));
    const double d_new = to_sec(m.kernel.cpu_time(a2) - a2_base);
    const double d_old = to_sec(m.kernel.cpu_time(other) - other_base);
    EXPECT_NEAR(d_new / (d_new + d_old), 0.5, 0.06);
}

TEST(FailureInjection, ManagingDeadPidViolatesContract) {
    Machine m;
    SimAlps alps(m.kernel, config());
    const os::Pid a = m.kernel.spawn("a", 0, std::make_unique<os::CpuBoundBehavior>());
    m.kernel.send_signal(a, os::Signal::kKill);
    EXPECT_THROW(alps.manage(a, 1), util::ContractViolation);
}

}  // namespace
}  // namespace alps::core
