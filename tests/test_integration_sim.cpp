// End-to-end integration: the ALPS driver process scheduling compute-bound
// workloads on the simulated 4.4BSD kernel. These tests assert the paper's
// headline claims at reduced scale (the bench harnesses run the full scale).
#include <gtest/gtest.h>

#include <iostream>

#include "util/stats.h"

#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps::workload {
namespace {

using util::msec;

SimRunConfig quick(ShareModel model, int n, util::Duration quantum,
                   int cycles = 60) {
    SimRunConfig cfg;
    cfg.shares = make_shares(model, n);
    cfg.quantum = quantum;
    cfg.measure_cycles = cycles;
    cfg.warmup_cycles = 5;
    return cfg;
}

TEST(IntegrationAccuracy, Linear5Under5Percent) {
    const SimRunResult r = run_cpu_bound_experiment(quick(ShareModel::kLinear, 5, msec(10)));
    std::cout << "Linear5@10ms: err=" << r.mean_rms_error * 100
              << "% ovh=" << r.overhead_fraction * 100 << "%\n";
    EXPECT_FALSE(r.timed_out);
    // Paper: under 5% for most workloads. Linear5 at the shortest quantum
    // sits right at that edge in the simulator (quantum-boundary jitter on
    // the 1-share process); allow a small margin here — the Fig-4 bench
    // reports the full table.
    EXPECT_LT(r.mean_rms_error, 0.065);
    EXPECT_LT(r.overhead_fraction, 0.01);  // paper: under 1%
}

TEST(IntegrationAccuracy, Equal10Under5Percent) {
    const SimRunResult r = run_cpu_bound_experiment(quick(ShareModel::kEqual, 10, msec(10)));
    std::cout << "Equal10@10ms: err=" << r.mean_rms_error * 100
              << "% ovh=" << r.overhead_fraction * 100 << "%\n";
    EXPECT_LT(r.mean_rms_error, 0.05);
    EXPECT_LT(r.overhead_fraction, 0.01);
}

TEST(IntegrationAccuracy, Skewed20WorstCaseButBounded) {
    // The paper's Figure 4: skewed distributions show the worst accuracy
    // (quantization on the many single-share processes). In the simulator
    // this shows at the short quantum.
    const SimRunResult s20 = run_cpu_bound_experiment(quick(ShareModel::kSkewed, 20, msec(10), 30));
    const SimRunResult e20 = run_cpu_bound_experiment(quick(ShareModel::kEqual, 20, msec(10), 30));
    std::cout << "Skewed20@10ms err=" << s20.mean_rms_error * 100
              << "%  Equal20@10ms err=" << e20.mean_rms_error * 100 << "%\n";
    EXPECT_GE(s20.mean_rms_error, e20.mean_rms_error);
    EXPECT_LT(s20.mean_rms_error, 0.30);  // bounded, as in the paper
}

TEST(IntegrationOverhead, ShrinksWithLongerQuantum) {
    const auto shares = make_shares(ShareModel::kEqual, 10);
    SimRunConfig cfg;
    cfg.shares = shares;
    cfg.measure_cycles = 40;
    cfg.quantum = msec(10);
    const double o10 = run_cpu_bound_experiment(cfg).overhead_fraction;
    cfg.quantum = msec(40);
    const double o40 = run_cpu_bound_experiment(cfg).overhead_fraction;
    std::cout << "Equal10 ovh: 10ms=" << o10 * 100 << "% 40ms=" << o40 * 100 << "%\n";
    EXPECT_GT(o10, o40);
}

TEST(IntegrationOverhead, LazyBeatsEagerByPaperFactor) {
    SimRunConfig cfg = quick(ShareModel::kEqual, 10, msec(10), 40);
    cfg.lazy_measurement = true;
    const double lazy = run_cpu_bound_experiment(cfg).overhead_fraction;
    cfg.lazy_measurement = false;
    const double eager = run_cpu_bound_experiment(cfg).overhead_fraction;
    std::cout << "Equal10@10ms ovh: lazy=" << lazy * 100 << "% eager=" << eager * 100
              << "% factor=" << eager / lazy << "\n";
    // §3.2: the optimization cuts overhead by 1.8x-5.9x.
    EXPECT_GT(eager / lazy, 1.5);
}

TEST(IntegrationScalability, BreaksDownAtHighProcessCounts) {
    SimRunConfig small;
    small.shares.assign(10, 5);
    small.quantum = msec(10);
    small.measure_cycles = 25;
    SimRunConfig big = small;
    big.shares.assign(80, 5);  // well past the ~40-process threshold at 10 ms
    big.measure_cycles = 8;
    const SimRunResult rs = run_cpu_bound_experiment(small);
    const SimRunResult rb = run_cpu_bound_experiment(big);
    std::cout << "N=10 err=" << rs.mean_rms_error * 100 << "% missed=" << rs.boundaries_missed
              << " | N=80 err=" << rb.mean_rms_error * 100 << "% missed=" << rb.boundaries_missed
              << " ovh=" << rb.overhead_fraction * 100 << "%\n";
    EXPECT_LT(rs.mean_rms_error, 0.05);
    EXPECT_GT(rb.mean_rms_error, rs.mean_rms_error * 3);  // control lost
}

TEST(IntegrationIo, RedistributesBlockedShareProportionally) {
    IoRunConfig cfg;
    cfg.steady_cycles = 20;
    cfg.observe_cycles = 40;
    const IoRunResult r = run_io_experiment(cfg);
    ASSERT_GT(r.fractions.size(), r.io_onset_cycle + 20);

    // A cycle is only 6 quanta here, so a single cycle's fractions carry up
    // to ±(partial quantum)/cycle of attribution straddle; assert on means
    // over each regime, as the paper's figure conveys.

    // Steady state before onset: 1:2:3 (skip the very first cycles).
    std::array<util::RunningStats, 3> steady;
    for (std::size_t i = 5; i + 2 < r.io_onset_cycle; ++i) {
        for (int k = 0; k < 3; ++k) {
            steady[static_cast<std::size_t>(k)].add(
                r.fractions[i][static_cast<std::size_t>(k)]);
        }
    }
    ASSERT_GT(steady[0].count(), 5u);
    EXPECT_NEAR(steady[0].mean(), 1.0 / 6.0, 0.02);
    EXPECT_NEAR(steady[1].mean(), 2.0 / 6.0, 0.02);
    EXPECT_NEAR(steady[2].mean(), 3.0 / 6.0, 0.02);

    // After onset, cycles alternate: while B blocks, A:C = 1:3 (25%/75%);
    // while B runs, 1:2:3 again. Classify each cycle by B's fraction.
    std::array<util::RunningStats, 3> blocked;
    std::array<util::RunningStats, 3> active;
    for (std::size_t i = r.io_onset_cycle + 2; i < r.fractions.size(); ++i) {
        const auto& f = r.fractions[i];
        auto* bucket = f[1] < 0.08 ? &blocked : (f[1] > 0.25 ? &active : nullptr);
        if (bucket == nullptr) continue;  // transition cycle
        for (int k = 0; k < 3; ++k) {
            (*bucket)[static_cast<std::size_t>(k)].add(f[static_cast<std::size_t>(k)]);
        }
    }
    std::cout << "io: onset=" << r.io_onset_cycle << " blocked=" << blocked[0].count()
              << " active=" << active[0].count() << "\n";
    ASSERT_GT(blocked[0].count(), 5u);
    ASSERT_GT(active[0].count(), 5u);
    EXPECT_NEAR(blocked[0].mean(), 0.25, 0.04);  // A while B blocks
    EXPECT_NEAR(blocked[2].mean(), 0.75, 0.04);  // C while B blocks
    EXPECT_NEAR(active[0].mean(), 1.0 / 6.0, 0.04);
    EXPECT_NEAR(active[2].mean(), 3.0 / 6.0, 0.04);
}

TEST(IntegrationMultiAlps, EachAlpsAccurateDespiteOthers) {
    MultiAlpsConfig cfg;  // the paper's full 15-second scenario
    const MultiAlpsResult r = run_multi_alps_experiment(cfg);
    std::cout << "multi-ALPS mean relative error = " << r.mean_relative_error * 100
              << "%\n";
    ASSERT_EQ(r.procs.size(), 9u);
    // Paper Table 3: average 0.93%, max 3.3%. Allow modest headroom.
    EXPECT_LT(r.mean_relative_error, 0.04);
    for (const auto& pr : r.procs) {
        for (int phase = pr.group; phase < 3; ++phase) {
            const auto& cell = pr.phases[static_cast<std::size_t>(phase)];
            ASSERT_TRUE(cell.has_value())
                << "group " << pr.group << " phase " << phase;
            EXPECT_LT(cell->relative_error, 0.12)
                << "share " << pr.share << " phase " << phase;
        }
    }
}

TEST(IntegrationMultiAlps, GroupsSplitMachineRoughlyEvenlyInPhase3) {
    MultiAlpsConfig cfg;
    const MultiAlpsResult r = run_multi_alps_experiment(cfg);
    // In phase 3, each group's absolute rates should sum to roughly 1/3 of
    // the CPU (the kernel's per-process fairness; paper: "very roughly").
    double group_rate[3] = {0, 0, 0};
    for (const auto& pr : r.procs) {
        group_rate[pr.group] += pr.phases[2]->rate;
    }
    for (int g = 0; g < 3; ++g) {
        EXPECT_NEAR(group_rate[g], 1.0 / 3.0, 0.12) << "group " << g;
    }
}

}  // namespace
}  // namespace alps::workload
