// ALPS on a multiprocessor (extension; the paper's host is a uniprocessor).
//
// Key observed property: ALPS keeps its contract — proportional division of
// whatever CPU time the group consumes — but it is not work-conserving on
// SMP: when the eligible set is smaller than the CPU count, capacity idles.
// With weights infeasible for single-threaded processes (one process "owed"
// more than one CPU), ALPS holds the exact ratios by idling rather than
// redistributing the surplus — the in-kernel problem Surplus Fair Scheduling
// (Chandra et al., cited in the paper) was designed to solve.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "workload/experiments.h"

namespace alps::core {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct SmpRun {
    std::vector<double> fractions;
    double utilization = 0.0;  // consumed / (ncpus * wall)
    std::uint64_t missed = 0;
};

SmpRun run_smp(int ncpus, const std::vector<util::Share>& shares, Duration wall) {
    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.ncpus = ncpus;
    os::Kernel kernel(engine, nullptr, kcfg);
    SchedulerConfig scfg;
    scfg.quantum = msec(10);
    SimAlps alps(kernel, scfg);
    std::vector<os::Pid> pids;
    for (const auto s : shares) {
        const os::Pid pid =
            kernel.spawn("w", 0, std::make_unique<os::CpuBoundBehavior>());
        alps.manage(pid, s);
        pids.push_back(pid);
    }
    engine.run_until(engine.now() + wall);
    SmpRun r;
    double total = 0.0;
    for (const os::Pid p : pids) {
        r.fractions.push_back(to_sec(kernel.cpu_time(p)));
        total += r.fractions.back();
    }
    for (auto& f : r.fractions) f /= total;
    r.utilization = total / (static_cast<double>(ncpus) * to_sec(wall));
    r.missed = alps.driver().boundaries_missed();
    return r;
}

TEST(SmpAlps, FeasibleSharesStayProportionalOnTwoCpus) {
    const SmpRun r = run_smp(2, {1, 2, 3}, sec(30));
    EXPECT_NEAR(r.fractions[0], 1.0 / 6.0, 0.01);
    EXPECT_NEAR(r.fractions[1], 2.0 / 6.0, 0.01);
    EXPECT_NEAR(r.fractions[2], 3.0 / 6.0, 0.01);
    EXPECT_EQ(r.missed, 0u);
}

TEST(SmpAlps, NotWorkConservingWithFewEligible) {
    // Proportions are exact but the machine is not saturated: once the
    // small-share processes exhaust their allowances, fewer runnables than
    // CPUs remain.
    const SmpRun r = run_smp(2, {1, 2, 3}, sec(30));
    EXPECT_LT(r.utilization, 0.9);
    EXPECT_GT(r.utilization, 0.5);
}

TEST(SmpAlps, InfeasibleWeightsHoldRatiosByIdling) {
    // The 8-share process is "owed" 1.6 CPUs but can use at most one. ALPS
    // still delivers the exact 1:1:8 split of consumed time — at the price
    // of leaving the second CPU mostly idle.
    const SmpRun r = run_smp(2, {1, 1, 8}, sec(30));
    EXPECT_NEAR(r.fractions[0], 0.1, 0.01);
    EXPECT_NEAR(r.fractions[1], 0.1, 0.01);
    EXPECT_NEAR(r.fractions[2], 0.8, 0.01);
    EXPECT_LT(r.utilization, 0.7);  // far from the 2-CPU capacity
}

TEST(SmpAlps, EqualSharesSaturateTheMachine) {
    // With all processes eligible all the time (equal shares, counts >=
    // ncpus), nothing idles: utilization ~1 and proportions hold.
    const SmpRun r = run_smp(2, {5, 5, 5, 5}, sec(30));
    for (const double f : r.fractions) EXPECT_NEAR(f, 0.25, 0.02);
    EXPECT_GT(r.utilization, 0.95);
}

TEST(SmpAlps, FourCpusEightProcesses) {
    const SmpRun r = run_smp(4, {1, 1, 2, 2, 3, 3, 4, 4}, sec(30));
    double total_share = 20.0;
    const double expected[] = {1, 1, 2, 2, 3, 3, 4, 4};
    for (std::size_t i = 0; i < r.fractions.size(); ++i) {
        EXPECT_NEAR(r.fractions[i], expected[i] / total_share, 0.015) << i;
    }
}

TEST(SmpAlps, GroupPrincipalExploitsParallelism) {
    // A principal with two member processes can burn 2 CPUs; a solo
    // principal cannot. With shares 1:1 on 2 CPUs, exact proportionality
    // still holds on consumed time (the pair is throttled to match the
    // solo's feasible rate).
    sim::Engine engine;
    os::KernelConfig kcfg;
    kcfg.ncpus = 2;
    os::Kernel kernel(engine, nullptr, kcfg);
    SchedulerConfig scfg;
    scfg.quantum = msec(10);
    scfg.max_parallelism = 2.0;  // group entities can consume 2 quanta/tick
    SimGroupAlps alps(kernel, scfg);
    const os::Pid solo =
        kernel.spawn("solo", 100, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid p1 =
        kernel.spawn("pair1", 200, std::make_unique<os::CpuBoundBehavior>());
    const os::Pid p2 =
        kernel.spawn("pair2", 200, std::make_unique<os::CpuBoundBehavior>());
    alps.manage_user("solo", 100, 1);
    alps.manage_user("pair", 200, 1);
    engine.run_until(engine.now() + sec(30));
    const double d_solo = to_sec(kernel.cpu_time(solo));
    const double d_pair = to_sec(kernel.cpu_time(p1)) + to_sec(kernel.cpu_time(p2));
    EXPECT_NEAR(d_pair / (d_solo + d_pair), 0.5, 0.05);
}

TEST(SmpAlps, PinningProtectsPerCoreControllersFromMigration) {
    // The per-core deployment's correctness rests on the pinned-process
    // exemption: idle-steal and rebalance must not move a worker off the
    // domain whose controller measures it. With the exemption (pin_workers,
    // the default) no cross-domain migration happens at all; without it the
    // kernel shuffles workers between domains and the worst instance's
    // share error degrades by an order of magnitude.
    const auto run = [](bool pin) {
        workload::ManyCoreConfig cfg;
        cfg.ncpus = 8;
        cfg.procs_per_cpu = 2;
        cfg.per_core_alps = true;
        cfg.pin_workers = pin;
        cfg.quantum = util::msec(10);
        cfg.measure_cycles = 20;
        cfg.warmup_cycles = 3;
        return workload::run_many_core_experiment(cfg);
    };
    const auto pinned = run(true);
    EXPECT_EQ(pinned.migrations, 0u);
    EXPECT_EQ(pinned.steals, 0u);

    const auto unpinned = run(false);
    EXPECT_GT(unpinned.migrations + unpinned.steals, 0u);
    EXPECT_GT(unpinned.worst_rms_error, 2.0 * pinned.worst_rms_error);
}

}  // namespace
}  // namespace alps::core
