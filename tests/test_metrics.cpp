#include <gtest/gtest.h>

#include "metrics/cycle_log.h"
#include "metrics/exact_cycle_log.h"
#include "metrics/slope_analysis.h"
#include "metrics/threshold.h"
#include "util/assert.h"

namespace alps::metrics {
namespace {

using core::CycleRecord;
using util::Duration;
using util::msec;
using util::sec;
using util::TimePoint;

CycleRecord make_record(std::vector<util::Share> shares, std::vector<Duration> consumed,
                        std::uint64_t index = 0) {
    CycleRecord rec;
    rec.index = index;
    rec.shares = std::move(shares);
    rec.consumed = std::move(consumed);
    rec.ids.resize(rec.shares.size());
    for (std::size_t i = 0; i < rec.ids.size(); ++i) {
        rec.ids[i] = static_cast<core::EntityId>(i + 1);
    }
    return rec;
}

// ----------------------------------------------------------------------------
// CycleLog

TEST(CycleLog, PerfectCycleHasZeroError) {
    const auto rec = make_record({1, 2, 3}, {msec(10), msec(20), msec(30)});
    EXPECT_DOUBLE_EQ(CycleLog::cycle_rms_error(rec), 0.0);
}

TEST(CycleLog, KnownErrorValue) {
    // Shares 1:1, consumption 15/5 of a 20 total: ideal 10/10, rel errs ±0.5.
    const auto rec = make_record({1, 1}, {msec(15), msec(5)});
    EXPECT_NEAR(CycleLog::cycle_rms_error(rec), 0.5, 1e-12);
}

TEST(CycleLog, EmptyCycleIsZero) {
    const auto rec = make_record({1, 2}, {Duration::zero(), Duration::zero()});
    EXPECT_DOUBLE_EQ(CycleLog::cycle_rms_error(rec), 0.0);
}

TEST(CycleLog, MeanSkipsWarmupAndHonorsLimit) {
    CycleLog log;
    log.observe(make_record({1, 1}, {msec(20), Duration::zero()}, 0));  // err 1.0
    log.observe(make_record({1, 1}, {msec(10), msec(10)}, 1));          // err 0.0
    log.observe(make_record({1, 1}, {msec(15), msec(5)}, 2));           // err 0.5
    EXPECT_EQ(log.cycle_count(), 3u);
    EXPECT_NEAR(log.mean_rms_relative_error(0), 0.5, 1e-12);
    EXPECT_NEAR(log.mean_rms_relative_error(1), 0.25, 1e-12);
    EXPECT_NEAR(log.mean_rms_relative_error(1, 1), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(log.mean_rms_relative_error(5), 0.0);  // past the end
}

TEST(CycleLog, FractionsSumToOne) {
    const auto rec = make_record({1, 2, 3}, {msec(12), msec(18), msec(30)});
    const auto f = CycleLog::cycle_fractions(rec);
    EXPECT_NEAR(f[0] + f[1] + f[2], 1.0, 1e-12);
    EXPECT_NEAR(f[0], 0.2, 1e-12);
}

TEST(CycleLog, ObserverWiresThrough) {
    CycleLog log;
    auto obs = log.observer();
    obs(make_record({1}, {msec(5)}));
    EXPECT_EQ(log.cycle_count(), 1u);
}

// ----------------------------------------------------------------------------
// ExactCycleLog

TEST(ExactCycleLog, DifferencesConsecutiveSnapshots) {
    std::map<core::EntityId, Duration> cpu{{1, msec(0)}, {2, msec(0)}};
    ExactCycleLog log([&](core::EntityId id) { return cpu.at(id); });

    // First record establishes the baseline and is not logged.
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 0));
    EXPECT_EQ(log.cycle_count(), 0u);

    cpu[1] = msec(10);
    cpu[2] = msec(30);
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 1));
    ASSERT_EQ(log.cycle_count(), 1u);
    EXPECT_EQ(log.records()[0].consumed[0], msec(10));
    EXPECT_EQ(log.records()[0].consumed[1], msec(30));

    cpu[1] = msec(15);
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 2));
    ASSERT_EQ(log.cycle_count(), 2u);
    EXPECT_EQ(log.records()[1].consumed[0], msec(5));
    EXPECT_EQ(log.records()[1].consumed[1], Duration::zero());
}

TEST(ExactCycleLog, NewEntityMidRunRebaselines) {
    std::map<core::EntityId, Duration> cpu{{1, msec(0)}};
    ExactCycleLog log([&](core::EntityId id) { return cpu.at(id); });
    log.observe(make_record({1}, {Duration::zero()}, 0));
    cpu[1] = msec(10);
    log.observe(make_record({1}, {Duration::zero()}, 1));
    EXPECT_EQ(log.cycle_count(), 1u);

    // Entity 2 appears: the cycle that introduces it is skipped.
    cpu[2] = msec(100);
    cpu[1] = msec(20);
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 2));
    EXPECT_EQ(log.cycle_count(), 1u);

    cpu[1] = msec(25);
    cpu[2] = msec(105);
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 3));
    ASSERT_EQ(log.cycle_count(), 2u);
    EXPECT_EQ(log.records()[1].consumed[1], msec(5));  // not the pre-join 100
}

TEST(ExactCycleLog, NullReaderViolatesContract) {
    EXPECT_THROW(ExactCycleLog(nullptr), util::ContractViolation);
}

TEST(ExactCycleLog, MeanErrorMatchesCycleLogMath) {
    std::map<core::EntityId, Duration> cpu{{1, msec(0)}, {2, msec(0)}};
    ExactCycleLog log([&](core::EntityId id) { return cpu.at(id); });
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 0));
    cpu[1] = msec(15);
    cpu[2] = msec(5);
    log.observe(make_record({1, 1}, {Duration::zero(), Duration::zero()}, 1));
    EXPECT_NEAR(log.mean_rms_relative_error(), 0.5, 1e-12);
}

// ----------------------------------------------------------------------------
// Slope analysis (Table 3 machinery)

TEST(ConsumptionSeries, RateIsLeastSquaresSlope) {
    ConsumptionSeries s;
    for (int i = 0; i <= 10; ++i) {
        // 40% CPU rate: cumulative 0.4 s per second.
        s.add(TimePoint{} + sec(i), Duration{sec(i).count() * 4 / 10});
    }
    EXPECT_NEAR(s.rate(TimePoint{}, TimePoint{} + sec(11)), 0.4, 1e-9);
}

TEST(ConsumptionSeries, WindowBoundsAreHalfOpen) {
    ConsumptionSeries s;
    s.add(TimePoint{} + sec(1), msec(100));
    s.add(TimePoint{} + sec(2), msec(200));
    s.add(TimePoint{} + sec(3), msec(300));
    EXPECT_EQ(s.points_in(TimePoint{} + sec(1), TimePoint{} + sec(3)), 2u);
    EXPECT_EQ(s.points_in(TimePoint{} + sec(1), TimePoint{} + sec(4)), 3u);
    EXPECT_THROW((void)s.rate(TimePoint{} + sec(1), TimePoint{} + sec(2)),
                 util::ContractViolation);  // only 1 point
}

TEST(AnalyzePhase, RecoversWithinGroupFractions) {
    // Rates 0.1 / 0.2 / 0.3 with shares 1:2:3 -> zero relative error.
    std::vector<ConsumptionSeries> series(3);
    for (int p = 0; p < 3; ++p) {
        for (int i = 0; i <= 10; ++i) {
            series[static_cast<std::size_t>(p)].add(
                TimePoint{} + sec(i), Duration{sec(i).count() * (p + 1) / 10});
        }
    }
    const std::vector<const ConsumptionSeries*> ptrs{&series[0], &series[1], &series[2]};
    const auto res =
        analyze_phase(ptrs, {1, 2, 3}, TimePoint{}, TimePoint{} + sec(11));
    for (int p = 0; p < 3; ++p) {
        EXPECT_NEAR(res[static_cast<std::size_t>(p)].fraction,
                    (p + 1) / 6.0, 1e-9);
        EXPECT_NEAR(res[static_cast<std::size_t>(p)].relative_error, 0.0, 1e-9);
    }
}

TEST(AnalyzePhase, ReportsRelativeError) {
    // Both at the same rate but shares 1:3 -> fractions 0.5/0.5 vs 0.25/0.75.
    std::vector<ConsumptionSeries> series(2);
    for (int p = 0; p < 2; ++p) {
        for (int i = 0; i <= 4; ++i) {
            series[static_cast<std::size_t>(p)].add(TimePoint{} + sec(i),
                                                    Duration{sec(i).count() / 2});
        }
    }
    const std::vector<const ConsumptionSeries*> ptrs{&series[0], &series[1]};
    const auto res = analyze_phase(ptrs, {1, 3}, TimePoint{}, TimePoint{} + sec(5));
    EXPECT_NEAR(res[0].relative_error, 1.0, 1e-9);        // 0.5 vs 0.25
    EXPECT_NEAR(res[1].relative_error, 1.0 / 3.0, 1e-9);  // 0.5 vs 0.75
}

TEST(AnalyzePhase, MismatchedInputsViolateContract) {
    ConsumptionSeries s;
    const std::vector<const ConsumptionSeries*> ptrs{&s};
    EXPECT_THROW(analyze_phase(ptrs, {1, 2}, TimePoint{}, TimePoint{} + sec(1)),
                 util::ContractViolation);
    EXPECT_THROW(analyze_phase({}, {}, TimePoint{}, TimePoint{} + sec(1)),
                 util::ContractViolation);
}

// ----------------------------------------------------------------------------
// Threshold solver (§4.2)

TEST(Threshold, PaperFitsGivePaperPredictions) {
    // The paper's fitted lines and predicted thresholds 39 / 54 / 75.
    EXPECT_NEAR(breakdown_threshold({0.0639, 0.0604, 1.0}), 39.0, 1.0);
    EXPECT_NEAR(breakdown_threshold({0.0338, 0.0340, 1.0}), 54.0, 1.0);
    EXPECT_NEAR(breakdown_threshold({0.0172, 0.0160, 1.0}), 75.0, 1.0);
}

TEST(Threshold, SatisfiesDefiningEquation) {
    const util::LinearFit fit{0.05, 0.1, 1.0};
    const double n = breakdown_threshold(fit);
    const double lhs = fit.slope * n + fit.intercept;
    EXPECT_NEAR(lhs, 100.0 / (n + 1.0), 1e-9);
}

TEST(Threshold, NonPositiveSlopeViolatesContract) {
    EXPECT_THROW((void)breakdown_threshold({0.0, 1.0, 1.0}), util::ContractViolation);
    EXPECT_THROW((void)breakdown_threshold({-0.1, 1.0, 1.0}), util::ContractViolation);
}

}  // namespace
}  // namespace alps::metrics
