// Hand-computed fixtures for the fairness-metrics subsystem: every expected
// value below is derived on paper from the definitions in fairness.h, so a
// change in any metric's meaning fails loudly here before it skews a
// BENCH_policy_zoo comparison.
#include <cmath>

#include <gtest/gtest.h>

#include "alps/scheduler.h"
#include "metrics/fairness.h"
#include "telemetry/metrics.h"
#include "util/time.h"

namespace alps::metrics {
namespace {

using util::msec;

core::CycleRecord rec(std::vector<util::Share> shares, std::vector<int> consumed_ms) {
    core::CycleRecord r;
    for (std::size_t i = 0; i < shares.size(); ++i) {
        r.ids.push_back(static_cast<core::EntityId>(i + 1));
        r.shares.push_back(shares[i]);
        r.consumed.push_back(msec(consumed_ms[i]));
    }
    return r;
}

TEST(Fairness, PerfectProportionalityScoresPerfect) {
    // Shares 1:3, consumption 10:30 ms — exactly proportional.
    const auto r = rec({1, 3}, {10, 30});
    EXPECT_DOUBLE_EQ(cycle_time_ratio(r), 1.0);
    EXPECT_DOUBLE_EQ(cycle_max_complaint(r), 0.0);

    const auto report = analyze_fairness({&r, 1});
    EXPECT_EQ(report.cycles, 1u);
    EXPECT_DOUBLE_EQ(report.time_ratio, 1.0);
    EXPECT_DOUBLE_EQ(report.rms_share_error, 0.0);
    EXPECT_DOUBLE_EQ(report.max_complaint, 0.0);
}

TEST(Fairness, EqualSharesSkewedConsumption) {
    // Equal shares, 30:10 ms. Normalized rates 30 and 10 -> ratio 1/3.
    // Ideal is 20 each -> relative errors +0.5 and -0.5 -> RMS 0.5; the
    // shorted entity's justified complaint is (20-10)/20 = 0.5.
    const auto r = rec({1, 1}, {30, 10});
    EXPECT_DOUBLE_EQ(cycle_time_ratio(r), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(cycle_max_complaint(r), 0.5);

    const auto report = analyze_fairness({&r, 1});
    EXPECT_DOUBLE_EQ(report.time_ratio, 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(report.rms_share_error, 0.5);
    EXPECT_DOUBLE_EQ(report.max_complaint, 0.5);
}

TEST(Fairness, StarvedEntityDrivesRatioToZeroAndComplaintToOne) {
    // Shares 1:2, consumption 0:30 ms. The starved entity's rate is 0 ->
    // ratio 0; its ideal was 10 ms and it got nothing -> complaint 1.0.
    // Relative errors: -1.0 (starved) and (30-20)/20 = +0.5 ->
    // RMS = sqrt((1 + 0.25) / 2).
    const auto r = rec({1, 2}, {0, 30});
    EXPECT_DOUBLE_EQ(cycle_time_ratio(r), 0.0);
    EXPECT_DOUBLE_EQ(cycle_max_complaint(r), 1.0);

    const auto report = analyze_fairness({&r, 1});
    EXPECT_DOUBLE_EQ(report.rms_share_error, std::sqrt(0.625));
}

TEST(Fairness, ZeroShareEntityCarriesNoEntitlement) {
    // A share-0 entity (5 ms stolen) has no rate and no complaint; the two
    // entitled entities split perfectly between themselves (10:10 under 1:1)
    // but each fell short of its ideal 12.5 ms of the 25 ms total -> both
    // relative errors are -0.2.
    const auto r = rec({0, 1, 1}, {5, 10, 10});
    EXPECT_DOUBLE_EQ(cycle_time_ratio(r), 1.0);
    EXPECT_DOUBLE_EQ(cycle_max_complaint(r), 0.2);

    const auto report = analyze_fairness({&r, 1});
    EXPECT_DOUBLE_EQ(report.rms_share_error, 0.2);
}

TEST(Fairness, IdleCyclesCarryNoFairnessInformation) {
    const std::vector<core::CycleRecord> records = {
        rec({1, 1}, {0, 0}),    // idle: skipped
        rec({1, 1}, {10, 10}),  // perfect
    };
    const auto report = analyze_fairness(records);
    EXPECT_EQ(report.cycles, 1u);
    EXPECT_DOUBLE_EQ(report.time_ratio, 1.0);

    // An all-idle log yields the neutral defaults, not NaN.
    const std::vector<core::CycleRecord> idle = {rec({1, 1}, {0, 0})};
    const auto empty = analyze_fairness(idle);
    EXPECT_EQ(empty.cycles, 0u);
    EXPECT_DOUBLE_EQ(empty.time_ratio, 1.0);
    EXPECT_DOUBLE_EQ(empty.max_complaint, 0.0);
}

TEST(Fairness, WarmupAndLimitWindowTheRecords) {
    const std::vector<core::CycleRecord> records = {
        rec({1, 1}, {30, 10}),  // warmup transient
        rec({1, 1}, {10, 10}),  // the measured window
        rec({1, 1}, {0, 40}),   // past the limit
    };
    const auto report = analyze_fairness(records, /*warmup=*/1, /*limit=*/1);
    EXPECT_EQ(report.cycles, 1u);
    EXPECT_DOUBLE_EQ(report.time_ratio, 1.0);
    EXPECT_DOUBLE_EQ(report.rms_share_error, 0.0);
    EXPECT_DOUBLE_EQ(report.max_complaint, 0.0);

    // Warmup beyond the log is an empty (neutral) report, not a crash.
    EXPECT_EQ(analyze_fairness(records, /*warmup=*/10).cycles, 0u);
}

TEST(Fairness, MaxComplaintIsWorstAcrossCycles) {
    const std::vector<core::CycleRecord> records = {
        rec({1, 1}, {15, 25}),  // complaint (20-15)/20 = 0.25
        rec({1, 1}, {10, 30}),  // complaint (20-10)/20 = 0.5  <- worst
        rec({1, 1}, {18, 22}),  // complaint 0.1
    };
    const auto report = analyze_fairness(records);
    EXPECT_DOUBLE_EQ(report.max_complaint, 0.5);
}

TEST(Fairness, ExportRecordsPpmHistograms) {
    FairnessReport report;
    report.time_ratio = 0.5;
    report.rms_share_error = 0.25;
    report.max_complaint = 0.125;
    report.cycles = 7;

    telemetry::MetricsRegistry reg;
    export_fairness(report, reg);
    EXPECT_EQ(reg.histogram("fairness.time_ratio_ppm").sum(), 500000u);
    EXPECT_EQ(reg.histogram("fairness.rms_share_error_ppm").sum(), 250000u);
    EXPECT_EQ(reg.histogram("fairness.max_complaint_ppm").sum(), 125000u);
    EXPECT_EQ(reg.counter("fairness.cycles").value(), 7u);

    // Histograms (not gauges): a second task's export accumulates, so sweep
    // aggregation is order-free and --jobs-independent.
    export_fairness(report, reg);
    EXPECT_EQ(reg.histogram("fairness.time_ratio_ppm").count(), 2u);
    EXPECT_EQ(reg.counter("fairness.cycles").value(), 14u);
}

TEST(PerCpuFairness, HandComputedBreakdownAcrossThreeCpus) {
    // CPU 0: perfectly proportional (RMS 0); CPU 1: equal shares at 30:10 ms
    // (RMS 0.5, complaint 0.5 — the EqualSharesSkewedConsumption fixture);
    // CPU 2: no analyzable cycles (idle). Aggregates cover CPUs 0 and 1:
    // mean RMS = (0 + 0.5)/2 = 0.25, worst = 0.5, spread = 0.5 - 0 = 0.5,
    // worst complaint = 0.5, cpus_with_cycles = 2.
    std::vector<std::vector<core::CycleRecord>> per_cpu(3);
    per_cpu[0].push_back(rec({1, 3}, {10, 30}));
    per_cpu[1].push_back(rec({1, 1}, {30, 10}));
    per_cpu[2].push_back(rec({1, 1}, {0, 0}));  // idle cycle: skipped

    const auto report = analyze_fairness_per_cpu(per_cpu);
    ASSERT_EQ(report.per_cpu.size(), 3u);
    EXPECT_EQ(report.cpus_with_cycles, 2u);
    EXPECT_DOUBLE_EQ(report.per_cpu[0].rms_share_error, 0.0);
    EXPECT_DOUBLE_EQ(report.per_cpu[1].rms_share_error, 0.5);
    EXPECT_EQ(report.per_cpu[2].cycles, 0u);
    EXPECT_DOUBLE_EQ(report.mean_rms_share_error, 0.25);
    EXPECT_DOUBLE_EQ(report.worst_rms_share_error, 0.5);
    EXPECT_DOUBLE_EQ(report.rms_error_spread, 0.5);
    EXPECT_DOUBLE_EQ(report.worst_max_complaint, 0.5);
}

TEST(PerCpuFairness, SingleInstanceMeansEqualWorstWithZeroSpread) {
    // The one-global-ALPS row: one stream, so mean == worst and spread == 0.
    std::vector<std::vector<core::CycleRecord>> per_cpu(1);
    per_cpu[0].push_back(rec({1, 1}, {30, 10}));
    const auto report = analyze_fairness_per_cpu(per_cpu);
    EXPECT_EQ(report.cpus_with_cycles, 1u);
    EXPECT_DOUBLE_EQ(report.mean_rms_share_error, 0.5);
    EXPECT_DOUBLE_EQ(report.worst_rms_share_error, 0.5);
    EXPECT_DOUBLE_EQ(report.rms_error_spread, 0.0);
}

TEST(PerCpuFairness, ExportRecordsPpmHistograms) {
    PerCpuFairnessReport report;
    report.mean_rms_share_error = 0.25;
    report.worst_rms_share_error = 0.5;
    report.rms_error_spread = 0.125;
    report.worst_max_complaint = 0.75;
    report.cpus_with_cycles = 64;

    telemetry::MetricsRegistry reg;
    export_fairness_per_cpu(report, reg);
    EXPECT_EQ(reg.histogram("fairness.per_cpu_mean_rms_ppm").sum(), 250000u);
    EXPECT_EQ(reg.histogram("fairness.per_cpu_worst_rms_ppm").sum(), 500000u);
    EXPECT_EQ(reg.histogram("fairness.per_cpu_rms_spread_ppm").sum(), 125000u);
    EXPECT_EQ(reg.histogram("fairness.per_cpu_worst_complaint_ppm").sum(), 750000u);
    EXPECT_EQ(reg.counter("fairness.per_cpu_cpus").value(), 64u);
}

}  // namespace
}  // namespace alps::metrics
