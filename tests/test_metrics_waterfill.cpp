#include "metrics/waterfill.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/assert.h"
#include "util/rng.h"

namespace alps::metrics {
namespace {

TEST(Waterfill, NoCapsIsPureProportionalShare) {
    const std::vector<util::Share> w{1, 2, 3};
    const std::vector<double> caps{1.0, 1.0, 1.0};
    const auto a = waterfill(w, caps);
    EXPECT_NEAR(a[0], 1.0 / 6.0, 1e-12);
    EXPECT_NEAR(a[1], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(a[2], 3.0 / 6.0, 1e-12);
}

TEST(Waterfill, Figure6SpecialCase) {
    // The paper's I/O experiment while B blocks: shares 1:2:3, B's demand 0.
    const std::vector<util::Share> w{1, 2, 3};
    const std::vector<double> caps{1.0, 0.0, 1.0};
    const auto a = waterfill(w, caps);
    EXPECT_NEAR(a[0], 0.25, 1e-12);
    EXPECT_NEAR(a[1], 0.0, 1e-12);
    EXPECT_NEAR(a[2], 0.75, 1e-12);
}

TEST(Waterfill, BindingCapRedistributesProportionally) {
    // Shares 1:1:2; the 2-share client can only use 30%.
    const std::vector<util::Share> w{1, 1, 2};
    const std::vector<double> caps{1.0, 1.0, 0.3};
    const auto a = waterfill(w, caps);
    EXPECT_NEAR(a[2], 0.3, 1e-12);
    EXPECT_NEAR(a[0], 0.35, 1e-12);  // remaining 0.7 split 1:1
    EXPECT_NEAR(a[1], 0.35, 1e-12);
}

TEST(Waterfill, CascadingCaps) {
    const std::vector<util::Share> w{1, 1, 1, 1};
    const std::vector<double> caps{0.05, 0.15, 1.0, 1.0};
    const auto a = waterfill(w, caps);
    // Round 1 level 0.25 -> freeze 0.05 and 0.15; remaining 0.8 split 1:1.
    EXPECT_NEAR(a[0], 0.05, 1e-12);
    EXPECT_NEAR(a[1], 0.15, 1e-12);
    EXPECT_NEAR(a[2], 0.4, 1e-12);
    EXPECT_NEAR(a[3], 0.4, 1e-12);
}

TEST(Waterfill, AllCappedLeavesCpuIdle) {
    const std::vector<util::Share> w{3, 1};
    const std::vector<double> caps{0.2, 0.1};
    const auto a = waterfill(w, caps);
    EXPECT_NEAR(a[0], 0.2, 1e-12);
    EXPECT_NEAR(a[1], 0.1, 1e-12);
}

TEST(Waterfill, EmptyInput) {
    EXPECT_TRUE(waterfill({}, {}).empty());
}

TEST(Waterfill, Contracts) {
    const std::vector<util::Share> w{1};
    EXPECT_THROW((void)waterfill(w, {{1.5}}), util::ContractViolation);
    EXPECT_THROW((void)waterfill(w, {{-0.1}}), util::ContractViolation);
    EXPECT_THROW((void)waterfill(w, std::vector<double>{}), util::ContractViolation);
    const std::vector<util::Share> bad{0};
    EXPECT_THROW((void)waterfill(bad, {{0.5}}), util::ContractViolation);
}

class WaterfillPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WaterfillPropertyTest, ConservationAndOrderInvariants) {
    util::Rng rng(GetParam());
    for (int iter = 0; iter < 300; ++iter) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
        std::vector<util::Share> w(n);
        std::vector<double> caps(n);
        double cap_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = rng.uniform_int(1, 20);
            caps[i] = rng.next_double();
            cap_sum += caps[i];
        }
        const auto a = waterfill(w, caps);
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            // Feasibility.
            ASSERT_GE(a[i], -1e-12);
            ASSERT_LE(a[i], caps[i] + 1e-12);
            total += a[i];
        }
        // Conservation: everything allocatable is allocated.
        ASSERT_NEAR(total, std::min(1.0, cap_sum), 1e-9);
        // Proportionality among the uncapped: a_i / w_i equal for all
        // clients strictly below their cap.
        double level = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (a[i] < caps[i] - 1e-9) {
                const double li = a[i] / static_cast<double>(w[i]);
                if (level < 0) {
                    level = li;
                } else {
                    ASSERT_NEAR(li, level, 1e-9);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillPropertyTest,
                         ::testing::Values(5u, 6u, 7u));

}  // namespace
}  // namespace alps::metrics
