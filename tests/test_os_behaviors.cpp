#include "os/behaviors.h"

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;

// A throwaway context for driving behaviours without a full kernel run.
struct Ctx {
    sim::Engine engine;
    Kernel kernel{engine};
    ProcContext ctx{kernel, 1};
};

TEST(CpuBoundBehavior, AlwaysRunsForever) {
    Ctx c;
    CpuBoundBehavior b;
    for (int i = 0; i < 3; ++i) {
        const Action a = b.next_action(c.ctx);
        const auto* run = std::get_if<RunAction>(&a);
        ASSERT_NE(run, nullptr);
        EXPECT_EQ(run->duration, kRunForever);
        EXPECT_FALSE(run->lazy);
    }
}

TEST(FiniteCpuBehavior, RunsOnceThenExits) {
    Ctx c;
    FiniteCpuBehavior b(msec(40));
    const Action first = b.next_action(c.ctx);
    const auto* run = std::get_if<RunAction>(&first);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->duration, msec(40));
    EXPECT_TRUE(std::holds_alternative<ExitAction>(b.next_action(c.ctx)));
}

TEST(FiniteCpuBehavior, RejectsNonPositiveTotal) {
    EXPECT_THROW(FiniteCpuBehavior(Duration::zero()), util::ContractViolation);
}

TEST(PhasedIoBehavior, AlternatesBurstAndSleep) {
    Ctx c;
    PhasedIoBehavior b(msec(80), msec(240));
    const Action a1 = b.next_action(c.ctx);
    ASSERT_TRUE(std::holds_alternative<RunAction>(a1));
    EXPECT_EQ(std::get<RunAction>(a1).duration, msec(80));
    const Action a2 = b.next_action(c.ctx);
    ASSERT_TRUE(std::holds_alternative<SleepAction>(a2));
    EXPECT_EQ(std::get<SleepAction>(a2).duration, msec(240));
    const Action a3 = b.next_action(c.ctx);
    ASSERT_TRUE(std::holds_alternative<RunAction>(a3));
    EXPECT_EQ(std::get<RunAction>(a3).duration, msec(80));
}

TEST(PhasedIoBehavior, InitialCpuFoldedIntoFirstBurst) {
    Ctx c;
    PhasedIoBehavior b(msec(80), msec(240), msec(1000));
    const Action a1 = b.next_action(c.ctx);
    ASSERT_TRUE(std::holds_alternative<RunAction>(a1));
    EXPECT_EQ(std::get<RunAction>(a1).duration, msec(1080));
    EXPECT_TRUE(std::holds_alternative<SleepAction>(b.next_action(c.ctx)));
}

TEST(ScriptedBehavior, PlaysThenExits) {
    Ctx c;
    std::vector<Action> script{RunAction{msec(1)}, SleepAction{msec(2)}};
    ScriptedBehavior b(script);
    EXPECT_TRUE(std::holds_alternative<RunAction>(b.next_action(c.ctx)));
    EXPECT_TRUE(std::holds_alternative<SleepAction>(b.next_action(c.ctx)));
    EXPECT_TRUE(std::holds_alternative<ExitAction>(b.next_action(c.ctx)));
}

TEST(ScriptedBehavior, RepeatsWhenAsked) {
    Ctx c;
    std::vector<Action> script{RunAction{msec(1)}};
    ScriptedBehavior b(script, /*repeat=*/true);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(std::holds_alternative<RunAction>(b.next_action(c.ctx)));
    }
}

TEST(ScriptedBehavior, EmptyScriptViolatesContract) {
    EXPECT_THROW(ScriptedBehavior({}), util::ContractViolation);
}

TEST(FunctionBehavior, DelegatesToCallables) {
    Ctx c;
    int calls = 0;
    FunctionBehavior b([&](ProcContext) -> Action {
        ++calls;
        return ExitAction{};
    });
    EXPECT_TRUE(std::holds_alternative<ExitAction>(b.next_action(c.ctx)));
    EXPECT_EQ(calls, 1);
}

TEST(FunctionBehavior, LazyWithoutCallableViolatesContract) {
    Ctx c;
    FunctionBehavior b([](ProcContext) -> Action { return ExitAction{}; });
    EXPECT_THROW(b.lazy_run_duration(c.ctx), util::ContractViolation);
}

TEST(FunctionBehavior, LazyCallableUsed) {
    Ctx c;
    FunctionBehavior b([](ProcContext) -> Action { return RunAction{{}, true}; },
                       [](ProcContext) { return msec(3); });
    EXPECT_EQ(b.lazy_run_duration(c.ctx), msec(3));
}

TEST(DefaultLazyHook, ReturnsZero) {
    Ctx c;
    CpuBoundBehavior b;
    EXPECT_EQ(b.lazy_run_duration(c.ctx), Duration::zero());
}

}  // namespace
}  // namespace alps::os
