#include "os/bsd_policy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.h"

namespace alps::os {
namespace {

using util::msec;
using util::sec;

Proc make_proc(Pid pid, double estcpu = 0.0, int nice = 0) {
    Proc p;
    p.pid = pid;
    p.nice = nice;
    p.estcpu = estcpu;
    p.state = RunState::kRunnable;
    return p;
}

TEST(BsdPolicy, NewProcessStartsAtBasePriority) {
    BsdPolicy pol;
    Proc p = make_proc(1);
    pol.add(p);
    EXPECT_DOUBLE_EQ(p.estcpu, 0.0);
    EXPECT_DOUBLE_EQ(p.usrpri, pol.config().puser);
}

TEST(BsdPolicy, ChargeRaisesEstcpuAndWorsensPriority) {
    BsdPolicy pol;
    Proc p = make_proc(1);
    pol.add(p);
    pol.charge(p, msec(100));  // 10 stat ticks
    EXPECT_DOUBLE_EQ(p.estcpu, 10.0);
    EXPECT_DOUBLE_EQ(p.usrpri, pol.config().puser + 10.0 / 4.0);
}

TEST(BsdPolicy, EstcpuClampsAtLimit) {
    BsdPolicy pol;
    Proc p = make_proc(1);
    pol.add(p);
    pol.charge(p, sec(60));
    EXPECT_DOUBLE_EQ(p.estcpu, pol.config().estcpu_limit);
    EXPECT_LE(p.usrpri, pol.config().max_pri);
}

TEST(BsdPolicy, NiceWorsensPriority) {
    BsdPolicy pol;
    Proc nice0 = make_proc(1, 0.0, 0);
    Proc nice10 = make_proc(2, 0.0, 10);
    pol.add(nice0);
    pol.add(nice10);
    EXPECT_GT(nice10.usrpri, nice0.usrpri);
}

TEST(BsdPolicy, FifoWithinPriorityQueue) {
    BsdPolicy pol;
    Proc a = make_proc(1), b = make_proc(2);
    pol.add(a);
    pol.add(b);
    pol.enqueue(a);
    pol.enqueue(b);
    EXPECT_EQ(pol.peek(), &a);
    EXPECT_EQ(pol.pop(), &a);
    EXPECT_EQ(pol.pop(), &b);
    EXPECT_EQ(pol.pop(), nullptr);
}

TEST(BsdPolicy, LowerPriorityValueWinsAcrossQueues) {
    BsdPolicy pol;
    Proc good = make_proc(1);
    Proc bad = make_proc(2);
    pol.add(good);
    pol.add(bad);
    // add() zeroes estcpu, so install the history afterwards and recompute.
    bad.estcpu = 200.0;
    pol.charge(bad, util::Duration::zero());
    pol.enqueue(bad);
    pol.enqueue(good);
    EXPECT_EQ(pol.pop(), &good);
}

TEST(BsdPolicy, DoubleEnqueueViolatesContract) {
    BsdPolicy pol;
    Proc a = make_proc(1);
    pol.add(a);
    pol.enqueue(a);
    EXPECT_THROW(pol.enqueue(a), util::ContractViolation);
}

TEST(BsdPolicy, DequeueRemoves) {
    BsdPolicy pol;
    Proc a = make_proc(1), b = make_proc(2);
    pol.add(a);
    pol.add(b);
    pol.enqueue(a);
    pol.enqueue(b);
    pol.dequeue(a);
    EXPECT_EQ(pol.pop(), &b);
    EXPECT_EQ(pol.pop(), nullptr);
}

TEST(BsdPolicy, PreemptsOnlyAcrossQueues) {
    BsdPolicy pol;
    Proc a = make_proc(1);
    Proc b = make_proc(2);
    Proc c = make_proc(3);
    pol.add(a);
    pol.add(b);
    pol.add(c);
    b.estcpu = 2.0;   // usrpri 50.5 -> same queue as 50
    c.estcpu = 40.0;  // usrpri 60 -> worse queue
    pol.charge(b, util::Duration::zero());
    pol.charge(c, util::Duration::zero());
    EXPECT_FALSE(pol.preempts(b, a));  // same queue: no preemption
    EXPECT_FALSE(pol.preempts(c, a));
    EXPECT_TRUE(pol.preempts(a, c));   // strictly better queue preempts
    EXPECT_TRUE(pol.yields_to(a, b));  // equal queue: round-robin yield
    EXPECT_FALSE(pol.yields_to(a, c));
}

TEST(BsdPolicy, SecondTickDecaysEstcpu) {
    BsdPolicy pol;
    Proc p = make_proc(1, 100.0);
    pol.add(p);
    p.estcpu = 100.0;
    Proc* procs[] = {&p};
    pol.second_tick(procs, /*loadavg=*/1.0, util::TimePoint{} + sec(10));
    // decay = 2/(2+1) = 2/3
    EXPECT_NEAR(p.estcpu, 100.0 * 2.0 / 3.0, 1e-9);
}

TEST(BsdPolicy, HigherLoadDecaysSlower) {
    BsdPolicy pol;
    Proc p1 = make_proc(1, 100.0);
    Proc p2 = make_proc(2, 100.0);
    p1.estcpu = p2.estcpu = 100.0;
    Proc* procs1[] = {&p1};
    Proc* procs2[] = {&p2};
    pol.second_tick(procs1, 1.0, util::TimePoint{} + sec(10));
    pol.second_tick(procs2, 10.0, util::TimePoint{} + sec(10));
    EXPECT_LT(p1.estcpu, p2.estcpu);
}

TEST(BsdPolicy, SecondTickSkipsSleepers) {
    BsdPolicy pol;
    Proc p = make_proc(1, 100.0);
    p.estcpu = 100.0;
    p.state = RunState::kSleeping;
    Proc* procs[] = {&p};
    pol.second_tick(procs, 1.0, util::TimePoint{} + sec(10));
    EXPECT_DOUBLE_EQ(p.estcpu, 100.0);  // handled at wakeup instead
}

TEST(BsdPolicy, WakeupCreditDecaysPerSleptSecond) {
    BsdPolicy pol;
    Proc* none[] = {static_cast<Proc*>(nullptr)};
    (void)none;
    // Establish the load factor the policy uses for wakeup credit.
    Proc loadsetter = make_proc(9);
    Proc* procs[] = {&loadsetter};
    pol.second_tick(procs, 1.0, util::TimePoint{} + sec(10));  // decay factor 2/3 remembered

    Proc p = make_proc(1, 90.0);
    p.estcpu = 90.0;
    pol.on_wakeup(p, sec(2));
    EXPECT_NEAR(p.estcpu, 90.0 * (2.0 / 3.0) * (2.0 / 3.0), 1e-9);
}

TEST(BsdPolicy, ShortSleepEarnsNoCredit) {
    BsdPolicy pol;
    Proc p = make_proc(1, 90.0);
    p.estcpu = 90.0;
    pol.on_wakeup(p, msec(900));
    EXPECT_DOUBLE_EQ(p.estcpu, 90.0);
}

TEST(BsdPolicy, RemoveWhileQueuedIsSafe) {
    BsdPolicy pol;
    Proc a = make_proc(1);
    pol.add(a);
    pol.enqueue(a);
    pol.remove(a);
    EXPECT_EQ(pol.pop(), nullptr);
}

// on_wakeup special-cases sleeps of 1-3 whole seconds to avoid a per-wakeup
// libm pow() call. The replacement must be *bit-identical* to what the
// uncached std::pow(d, seconds) produced — estcpu feeds the priority, so one
// ULP would change dispatch order and break replay determinism. The decay
// factor is 2L/(2L+1) for loadavg L, always in (0, 1).
//
// All pow() calls below go through volatile exponents: with a literal
// exponent the compiler folds pow(d, 2.0) into d*d at compile time, which is
// precisely the substitution whose validity is in question.
TEST(BsdPolicy, WakeupIdentityShortcutIsBitExactOverDecayDomain) {
    // Dense sweep over the reachable decay-factor domain: L in steps of
    // 1/1024 covers every load shape the kernel's 1-minute average produces,
    // plus the exact values common in tests and small simulations. libm
    // returns x for pow(x, 1) exactly, so seconds==1 may shortcut to d.
    for (int i = 1; i <= 64 * 1024; ++i) {
        const double load = static_cast<double>(i) / 1024.0;
        const double d = (2.0 * load) / (2.0 * load + 1.0);
        volatile double one = 1.0;
        ASSERT_EQ(std::pow(d, one), d) << "load " << load;
    }
}

TEST(BsdPolicy, MultiplicationIsNotLibmPowWhichIsWhyPowersAreCached) {
    // libm's pow is not correctly rounded here: pow(d, 2) differs from the
    // (correctly rounded) d*d for a small fraction of decay factors, and
    // pow(d, 3) from d*d*d for a large one. Witnesses for both exist in the
    // domain, so on_wakeup must cache libm's values rather than multiply —
    // the cache exists to reproduce pow()'s bits, warts and all.
    bool square_mismatch = false;
    bool cube_mismatch = false;
    for (int i = 1; i <= 64 * 1024 && !(square_mismatch && cube_mismatch); ++i) {
        const double load = static_cast<double>(i) / 1024.0;
        const double d = (2.0 * load) / (2.0 * load + 1.0);
        volatile double two = 2.0;
        volatile double three = 3.0;
        square_mismatch = square_mismatch || std::pow(d, two) != d * d;
        cube_mismatch = cube_mismatch || std::pow(d, three) != d * d * d;
    }
    EXPECT_TRUE(square_mismatch);
    EXPECT_TRUE(cube_mismatch);
}

TEST(BsdPolicy, WakeupShortcutsMatchPowForOneToThreeSeconds) {
    // End-to-end check through on_wakeup: for every decay factor in a sweep
    // and every sleep of 1, 2, 3 (and 4, the general path) seconds, the
    // resulting estcpu equals the reference estcpu * pow(d, seconds) exactly.
    for (int i = 1; i <= 512; ++i) {
        const double load = static_cast<double>(i) / 64.0;
        BsdPolicy pol;
        Proc loadsetter = make_proc(99);
        Proc* procs[] = {&loadsetter};
        pol.second_tick(procs, load, util::TimePoint{} + sec(10));
        const double d = (2.0 * load) / (2.0 * load + 1.0);
        for (int seconds = 1; seconds <= 4; ++seconds) {
            Proc p = make_proc(1);
            pol.add(p);
            p.estcpu = 200.0 + static_cast<double>(i) / 8.0;
            const double expect =
                p.estcpu * std::pow(d, static_cast<double>(seconds));
            pol.on_wakeup(p, sec(seconds));
            ASSERT_EQ(p.estcpu, expect)
                << "load " << load << " seconds " << seconds;
        }
    }
}

}  // namespace
}  // namespace alps::os
