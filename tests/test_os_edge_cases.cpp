// Kernel edge cases around signal/sleep/exit interleavings.
#include <gtest/gtest.h>

#include <memory>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;

struct Machine {
    sim::Engine engine;
    Kernel kernel{engine};
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(KernelEdge, ChannelWakeupWhileStoppedDefersRun) {
    Machine m;
    static int tag = 0;
    const WaitChannel chan = &tag;
    std::vector<Action> script{BlockAction{chan}, RunAction{msec(30)}};
    const Pid p = m.kernel.spawn("b", 0, std::make_unique<ScriptedBehavior>(script));
    m.run_for(msec(10));
    ASSERT_TRUE(m.kernel.is_blocked(p));

    // Stop the sleeper, then wake its channel: it becomes runnable-but-
    // stopped and must not run until SIGCONT.
    m.kernel.send_signal(p, Signal::kStop);
    m.kernel.wakeup_channel(chan);
    m.run_for(msec(100));
    EXPECT_FALSE(m.kernel.is_blocked(p));
    EXPECT_EQ(m.kernel.cpu_time(p), Duration::zero());

    m.kernel.send_signal(p, Signal::kCont);
    m.run_for(msec(100));
    EXPECT_EQ(m.kernel.cpu_time(p), msec(30));
    EXPECT_FALSE(m.kernel.alive(p));  // script done
}

TEST(KernelEdge, ReapStoppedThenKilledProcess) {
    Machine m;
    const Pid p = m.kernel.spawn("x", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(50));
    m.kernel.send_signal(p, Signal::kStop);
    m.kernel.send_signal(p, Signal::kKill);
    ASSERT_FALSE(m.kernel.alive(p));
    m.kernel.reap(p);
    EXPECT_FALSE(m.kernel.exists(p));
    // The machine keeps running fine afterwards.
    const Pid q = m.kernel.spawn("y", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(100));
    EXPECT_EQ(m.kernel.cpu_time(q), msec(100));
}

TEST(KernelEdge, KillSleeperCancelsItsTimer) {
    Machine m;
    const Pid p = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(200)));
    m.run_for(msec(50));  // asleep until 210 ms
    ASSERT_TRUE(m.kernel.is_blocked(p));
    m.kernel.send_signal(p, Signal::kKill);
    EXPECT_FALSE(m.kernel.alive(p));
    m.run_for(msec(500));  // the cancelled wake must not resurrect it
    EXPECT_EQ(m.kernel.proc(p).state, RunState::kZombie);
}

TEST(KernelEdge, StopContStormKeepsAccountingExact) {
    Machine m;
    const Pid a = m.kernel.spawn("a", 0, std::make_unique<CpuBoundBehavior>());
    const Pid b = m.kernel.spawn("b", 0, std::make_unique<CpuBoundBehavior>());
    // Alternate stopping each of them every 7 ms for a while.
    for (int i = 0; i < 200; ++i) {
        const Pid victim = (i % 2 == 0) ? a : b;
        m.kernel.send_signal(victim, Signal::kStop);
        m.run_for(msec(7));
        m.kernel.send_signal(victim, Signal::kCont);
        m.run_for(msec(3));
    }
    // Work conservation through the storm.
    EXPECT_EQ(m.kernel.cpu_time(a) + m.kernel.cpu_time(b),
              m.kernel.busy_time());
    EXPECT_EQ(m.kernel.busy_time(), msec(2000));
}

TEST(KernelEdge, BehaviorExitWhileOnlyProcess) {
    Machine m;
    const Pid p = m.kernel.spawn("f", 0, std::make_unique<FiniteCpuBehavior>(msec(5)));
    m.run_for(msec(10));
    EXPECT_FALSE(m.kernel.alive(p));
    // Idle machine: no crash, no busy accrual.
    m.run_for(sec(2));
    EXPECT_EQ(m.kernel.busy_time(), msec(5));
}

TEST(KernelEdge, SleepUntilPastDeadlineRunsImmediately) {
    Machine m;
    std::vector<Action> script{RunAction{msec(5)},
                               SleepUntilAction{util::TimePoint{} + msec(1)},
                               RunAction{msec(5)}};
    const Pid p = m.kernel.spawn("s", 0, std::make_unique<ScriptedBehavior>(script));
    m.run_for(msec(50));
    // The deadline was already past at sleep time: clamped to "now".
    EXPECT_EQ(m.kernel.cpu_time(p), msec(10));
}

TEST(KernelEdge, ManySimultaneousWakersAllRun) {
    Machine m;
    static int tag = 0;
    const WaitChannel chan = &tag;
    std::vector<Pid> pids;
    for (int i = 0; i < 20; ++i) {
        std::vector<Action> script{BlockAction{chan}, RunAction{msec(10)}};
        pids.push_back(m.kernel.spawn("w" + std::to_string(i), 0,
                                      std::make_unique<ScriptedBehavior>(script)));
    }
    m.run_for(msec(5));
    m.kernel.wakeup_channel(chan);
    m.run_for(sec(1));
    for (const Pid p : pids) {
        EXPECT_EQ(m.kernel.cpu_time(p), msec(10)) << p;
        EXPECT_FALSE(m.kernel.alive(p));
    }
}

}  // namespace
}  // namespace alps::os
