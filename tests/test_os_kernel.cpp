#include "os/kernel.h"

#include <gtest/gtest.h>

#include <memory>

#include "os/behaviors.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::TimePoint;
using util::to_sec;

struct Machine {
    sim::Engine engine;
    Kernel kernel{engine};

    Pid cpu_hog(const std::string& name = "hog", Uid uid = 0) {
        return kernel.spawn(name, uid, std::make_unique<CpuBoundBehavior>());
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(Kernel, SingleProcessGetsAllCpu) {
    Machine m;
    const Pid p = m.cpu_hog();
    m.run_for(sec(10));
    EXPECT_EQ(m.kernel.cpu_time(p), sec(10));
    EXPECT_EQ(m.kernel.busy_time(), sec(10));
}

TEST(Kernel, IdleMachineAccumulatesNoBusyTime) {
    Machine m;
    m.run_for(sec(5));
    EXPECT_EQ(m.kernel.busy_time(), Duration::zero());
}

TEST(Kernel, TwoEqualProcessesSplitEvenly) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    const Pid b = m.cpu_hog("b");
    m.run_for(sec(10));
    const double fa = to_sec(m.kernel.cpu_time(a));
    const double fb = to_sec(m.kernel.cpu_time(b));
    EXPECT_NEAR(fa, 5.0, 0.3);
    EXPECT_NEAR(fb, 5.0, 0.3);
    EXPECT_NEAR(fa + fb, 10.0, 1e-6);
}

TEST(Kernel, FiveEqualProcessesSplitEvenly) {
    Machine m;
    std::vector<Pid> pids;
    for (int i = 0; i < 5; ++i) pids.push_back(m.cpu_hog("p" + std::to_string(i)));
    m.run_for(sec(20));
    for (Pid p : pids) {
        EXPECT_NEAR(to_sec(m.kernel.cpu_time(p)), 4.0, 0.4) << "pid " << p;
    }
}

TEST(Kernel, RoundRobinContextSwitches) {
    Machine m;
    m.cpu_hog("a");
    m.cpu_hog("b");
    m.run_for(sec(2));
    // 100 ms round-robin between two equal hogs: ~20 switches in 2 s.
    EXPECT_GE(m.kernel.context_switches(), 15u);
    EXPECT_LE(m.kernel.context_switches(), 30u);
}

TEST(Kernel, CpuTimeIncludesInProgressStretch) {
    Machine m;
    const Pid p = m.cpu_hog();
    m.run_for(msec(37));  // mid-slice
    EXPECT_EQ(m.kernel.cpu_time(p), msec(37));
}

TEST(Kernel, FiniteWorkExitsAndBecomesZombie) {
    Machine m;
    const Pid p = m.kernel.spawn("finite", 0, std::make_unique<FiniteCpuBehavior>(msec(250)));
    m.run_for(sec(1));
    EXPECT_FALSE(m.kernel.alive(p));
    EXPECT_TRUE(m.kernel.exists(p));
    EXPECT_EQ(m.kernel.proc(p).state, RunState::kZombie);
    EXPECT_EQ(m.kernel.cpu_time(p), msec(250));
}

TEST(Kernel, ReapRemovesZombie) {
    Machine m;
    const Pid p = m.kernel.spawn("finite", 0, std::make_unique<FiniteCpuBehavior>(msec(10)));
    m.run_for(sec(1));
    m.kernel.reap(p);
    EXPECT_FALSE(m.kernel.exists(p));
}

TEST(Kernel, ReapLiveProcessViolatesContract) {
    Machine m;
    const Pid p = m.cpu_hog();
    EXPECT_THROW(m.kernel.reap(p), util::ContractViolation);
}

TEST(Kernel, PhasedIoConsumesDutyCycle) {
    Machine m;
    // 10 ms CPU then 90 ms sleep, alone on the machine: 10% duty cycle.
    const Pid p = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(90)));
    m.run_for(sec(10));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(p)), 1.0, 0.05);
}

TEST(Kernel, SleeperIsBlockedRunnableIsNot) {
    Machine m;
    const Pid hog = m.cpu_hog();
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(5), msec(500)));
    // The io process waits behind the hog's first 100 ms round-robin slice,
    // runs its 5 ms burst at ~100 ms, then sleeps until ~605 ms.
    m.run_for(msec(150));
    EXPECT_TRUE(m.kernel.is_blocked(io));
    EXPECT_FALSE(m.kernel.is_blocked(hog));
}

TEST(Kernel, SleeperPreemptsPromptlyDespiteCompetition) {
    Machine m;
    m.cpu_hog("hog");
    // Interactive-like process: tiny bursts, long sleeps. The BSD policy
    // keeps its estcpu low, so it should receive nearly its full demand.
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(200)));
    m.run_for(sec(20));
    // Demand is 10/210 of the CPU ~= 0.95 s over 20 s.
    EXPECT_GT(to_sec(m.kernel.cpu_time(io)), 0.75);
}

TEST(Kernel, SigStopHaltsConsumption) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    const Pid b = m.cpu_hog("b");
    m.run_for(sec(2));
    const Duration a_before = m.kernel.cpu_time(a);
    m.kernel.send_signal(a, Signal::kStop);
    m.run_for(sec(2));
    EXPECT_EQ(m.kernel.cpu_time(a), a_before);  // no progress while stopped
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(b)), 3.0, 0.3);  // b got the freed CPU
    EXPECT_TRUE(m.kernel.proc(a).stopped);
}

TEST(Kernel, SigContResumesConsumption) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    m.kernel.send_signal(a, Signal::kStop);
    m.run_for(sec(1));
    EXPECT_EQ(m.kernel.cpu_time(a), Duration::zero());
    m.kernel.send_signal(a, Signal::kCont);
    m.run_for(sec(1));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(a)), 1.0, 1e-6);
}

TEST(Kernel, RedundantStopAndContAreIdempotent) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    m.kernel.send_signal(a, Signal::kStop);
    m.kernel.send_signal(a, Signal::kStop);
    m.kernel.send_signal(a, Signal::kCont);
    m.kernel.send_signal(a, Signal::kCont);
    m.run_for(sec(1));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(a)), 1.0, 1e-6);
}

TEST(Kernel, StopWhileSleepingKeepsSleeping) {
    Machine m;
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(300)));
    m.run_for(msec(50));  // now sleeping until 310 ms
    EXPECT_TRUE(m.kernel.is_blocked(io));
    m.kernel.send_signal(io, Signal::kStop);
    EXPECT_TRUE(m.kernel.is_blocked(io));  // still asleep (job control)
    // Sleep expires at 310 ms while stopped: becomes runnable-but-stopped.
    m.run_for(msec(500));
    EXPECT_FALSE(m.kernel.is_blocked(io));
    const Duration before = m.kernel.cpu_time(io);
    m.run_for(msec(500));
    EXPECT_EQ(m.kernel.cpu_time(io), before);  // no CPU while stopped
    m.kernel.send_signal(io, Signal::kCont);
    m.run_for(msec(50));
    EXPECT_GT(m.kernel.cpu_time(io), before);  // resumed its burst
}

TEST(Kernel, KillTerminates) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    m.run_for(sec(1));
    m.kernel.send_signal(a, Signal::kKill);
    EXPECT_FALSE(m.kernel.alive(a));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(1));  // rusage survives as zombie
}

TEST(Kernel, KillStoppedProcess) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    m.kernel.send_signal(a, Signal::kStop);
    m.kernel.send_signal(a, Signal::kKill);
    EXPECT_FALSE(m.kernel.alive(a));
}

TEST(Kernel, SignalToZombieIsIgnored) {
    Machine m;
    const Pid a = m.cpu_hog("a");
    m.kernel.send_signal(a, Signal::kKill);
    m.kernel.send_signal(a, Signal::kStop);  // no effect, no throw
    m.kernel.send_signal(a, Signal::kCont);
    EXPECT_FALSE(m.kernel.alive(a));
}

TEST(Kernel, WakeupChannelWakesBlockedProcess) {
    Machine m;
    static int channel_tag = 0;
    const WaitChannel chan = &channel_tag;
    std::vector<Action> script{BlockAction{chan}, RunAction{msec(50)}};
    const Pid p = m.kernel.spawn("blocker", 0,
                                 std::make_unique<ScriptedBehavior>(script));
    m.run_for(sec(1));
    EXPECT_TRUE(m.kernel.is_blocked(p));
    EXPECT_EQ(m.kernel.cpu_time(p), Duration::zero());
    m.kernel.wakeup_channel(chan);
    m.run_for(sec(1));
    EXPECT_EQ(m.kernel.cpu_time(p), msec(50));
    EXPECT_FALSE(m.kernel.alive(p));  // script exhausted -> exit
}

TEST(Kernel, WakeupChannelWakesAllWaiters) {
    Machine m;
    static int channel_tag = 0;
    const WaitChannel chan = &channel_tag;
    std::vector<Pid> pids;
    for (int i = 0; i < 3; ++i) {
        std::vector<Action> script{BlockAction{chan}, RunAction{msec(10)}};
        pids.push_back(m.kernel.spawn("b" + std::to_string(i), 0,
                                      std::make_unique<ScriptedBehavior>(script)));
    }
    m.run_for(msec(10));
    m.kernel.wakeup_channel(chan);
    m.run_for(sec(1));
    for (Pid p : pids) EXPECT_EQ(m.kernel.cpu_time(p), msec(10));
}

TEST(Kernel, PidsOfUidFiltersAndOrders) {
    Machine m;
    const Pid a = m.cpu_hog("a", 100);
    const Pid b = m.cpu_hog("b", 200);
    const Pid c = m.cpu_hog("c", 100);
    EXPECT_EQ(m.kernel.pids_of_uid(100), (std::vector<Pid>{a, c}));
    EXPECT_EQ(m.kernel.pids_of_uid(200), (std::vector<Pid>{b}));
    EXPECT_TRUE(m.kernel.pids_of_uid(300).empty());
    m.kernel.send_signal(c, Signal::kKill);
    EXPECT_EQ(m.kernel.pids_of_uid(100), (std::vector<Pid>{a}));
}

TEST(Kernel, SpawnMidRunGetsScheduled) {
    Machine m;
    m.cpu_hog("a");
    m.run_for(sec(2));
    const Pid late = m.cpu_hog("late");
    m.run_for(sec(2));
    // The newcomer has estcpu 0 (better priority) and must catch up
    // substantially; at minimum it runs a large fraction of the split.
    EXPECT_GT(to_sec(m.kernel.cpu_time(late)), 0.8);
}

TEST(Kernel, LoadAverageConvergesTowardRunnableCount) {
    Machine m;
    for (int i = 0; i < 4; ++i) m.cpu_hog("p" + std::to_string(i));
    m.run_for(sec(120));  // two time constants of the 1-minute EWMA
    EXPECT_GT(m.kernel.loadavg(), 2.5);
    EXPECT_LT(m.kernel.loadavg(), 4.1);
}

TEST(Kernel, DeterministicAcrossRuns) {
    auto run = [] {
        Machine m;
        const Pid a = m.cpu_hog("a");
        const Pid b = m.kernel.spawn(
            "io", 0, std::make_unique<PhasedIoBehavior>(util::msec(7), util::msec(23)));
        m.run_for(sec(5));
        return std::pair{m.kernel.cpu_time(a), m.kernel.cpu_time(b)};
    };
    EXPECT_EQ(run(), run());
}

TEST(Kernel, RunningPidReflectsDispatch) {
    Machine m;
    EXPECT_EQ(m.kernel.running_pid(), kNoPid);
    const Pid a = m.cpu_hog("a");
    m.run_for(msec(1));
    EXPECT_EQ(m.kernel.running_pid(), a);
}

TEST(Kernel, QueriesOnUnknownPidViolateContract) {
    Machine m;
    EXPECT_THROW((void)m.kernel.cpu_time(99), util::ContractViolation);
    EXPECT_THROW(m.kernel.send_signal(99, Signal::kStop), util::ContractViolation);
    EXPECT_FALSE(m.kernel.exists(99));
    EXPECT_FALSE(m.kernel.alive(99));
}

TEST(Kernel, ZeroLengthSleepScriptProgresses) {
    Machine m;
    std::vector<Action> script{RunAction{msec(5)}, SleepAction{Duration::zero()},
                               RunAction{msec(5)}};
    const Pid p = m.kernel.spawn("z", 0, std::make_unique<ScriptedBehavior>(script));
    m.run_for(sec(1));
    EXPECT_EQ(m.kernel.cpu_time(p), msec(10));
    EXPECT_FALSE(m.kernel.alive(p));
}

TEST(Kernel, ManyProcessesConserveTotalCpu) {
    Machine m;
    std::vector<Pid> pids;
    for (int i = 0; i < 30; ++i) pids.push_back(m.cpu_hog("p" + std::to_string(i)));
    m.run_for(sec(30));
    Duration total{0};
    for (Pid p : pids) total += m.kernel.cpu_time(p);
    EXPECT_EQ(total, sec(30));  // work-conserving, no lost time
}

}  // namespace
}  // namespace alps::os
