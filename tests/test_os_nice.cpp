// nice(1) semantics under the 4.4BSD policy, and their interaction with
// ALPS (which explicitly does NOT rely on priority manipulation — §1 calls
// out why running the scheduler at raised priority is undesirable).
#include <gtest/gtest.h>

#include <memory>

#include "alps/sim_adapter.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct Machine {
    sim::Engine engine;
    Kernel kernel{engine};
    Pid hog(const std::string& name, int nice) {
        return kernel.spawn(name, 0, std::make_unique<CpuBoundBehavior>(), nice);
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(Nice, PositiveNiceYieldsLessCpu) {
    Machine m;
    const Pid normal = m.hog("normal", 0);
    const Pid niced = m.hog("niced", 10);
    m.run_for(sec(30));
    const double a = to_sec(m.kernel.cpu_time(normal));
    const double b = to_sec(m.kernel.cpu_time(niced));
    EXPECT_GT(a, b * 1.3);  // nice 10 -> +20 priority points: clearly worse
    EXPECT_NEAR(a + b, 30.0, 1e-6);
}

TEST(Nice, EquallyNicedProcessesStillShareEvenly) {
    Machine m;
    const Pid a = m.hog("a", 10);
    const Pid b = m.hog("b", 10);
    m.run_for(sec(10));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(a)), 5.0, 0.5);
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(b)), 5.0, 0.5);
}

TEST(Nice, AlpsOverridesNiceWithinItsGroup) {
    // The application wants 1:1 between a nice-10 process and a normal one.
    // The kernel alone would skew toward the normal process; ALPS restores
    // the requested split without touching priorities.
    Machine m;
    const Pid normal = m.hog("normal", 0);
    const Pid niced = m.hog("niced", 10);

    core::SchedulerConfig cfg;
    cfg.quantum = msec(10);
    core::SimAlps alps(m.kernel, cfg);
    alps.manage(normal, 1);
    alps.manage(niced, 1);
    m.run_for(sec(30));
    const double a = to_sec(m.kernel.cpu_time(normal));
    const double b = to_sec(m.kernel.cpu_time(niced));
    EXPECT_NEAR(b / (a + b), 0.5, 0.02);
}

TEST(Nice, AlpsDriverNeedsNoPriority) {
    // The paper's §1 point: ALPS runs with no special privilege. Handicap
    // the driver with nice 10 (a *worse* priority than its workload) — the
    // wakeup path still gets it the CPU each quantum and accuracy holds.
    Machine m;
    const Pid a = m.hog("a", 0);
    const Pid b = m.hog("b", 0);

    core::SchedulerConfig cfg;
    cfg.quantum = msec(10);
    core::SimAlps alps(m.kernel, cfg, core::CostModel{}, "alps-niced", 0);
    // Re-nice the driver after spawn: simulate an administrator handicap.
    // (No setpriority API on the sim; construct the situation via spawn.)
    alps.manage(a, 1);
    alps.manage(b, 3);
    m.run_for(sec(20));
    const double da = to_sec(m.kernel.cpu_time(a));
    const double db = to_sec(m.kernel.cpu_time(b));
    EXPECT_NEAR(db / (da + db), 0.75, 0.02);
    EXPECT_EQ(alps.driver().boundaries_missed(), 0u);
}

}  // namespace
}  // namespace alps::os
