// The kernel policy zoo: lottery, stride, and CFS-vruntime as pluggable
// SchedPolicy implementations, the name->policy factory, and the Kernel's
// loud rejection of unknown policy names.
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "os/policies/cfs.h"
#include "os/policies/factory.h"
#include "os/policies/lottery.h"
#include "os/policies/stride.h"
#include "os/policies/weight.h"
#include "sim/engine.h"

namespace alps::os {
namespace {

using policies::CfsPolicy;
using policies::LotteryPolicy;
using policies::StridePolicy;
using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

Proc make_proc(Pid pid, int nice = 0) {
    Proc p;
    p.pid = pid;
    p.nice = nice;
    p.state = RunState::kRunnable;
    return p;
}

/// A whole machine under one policy; `pol` stays valid for ticket surgery.
template <typename Policy>
struct Machine {
    sim::Engine engine;
    Policy* pol;
    Kernel kernel;

    explicit Machine(typename Policy::Config cfg = {})
        : kernel(engine, [&] {
              auto p = std::make_unique<Policy>(cfg);
              pol = p.get();
              return p;
          }()) {}

    Pid hog(const std::string& name, int nice = 0) {
        return kernel.spawn(name, 0, std::make_unique<CpuBoundBehavior>(), nice);
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
    double cpu(Pid pid) { return to_sec(kernel.cpu_time(pid)); }
};

// ----- factory & kernel validation ----------------------------------------

TEST(PolicyFactory, ListsTheFourPolicies) {
    const auto infos = policies::known_policies();
    ASSERT_EQ(infos.size(), 4u);
    EXPECT_EQ(infos[0].name, "bsd");
    for (const auto& info : infos) {
        EXPECT_TRUE(policies::is_known_policy(info.name));
        EXPECT_NE(policies::make_policy(info.name), nullptr);
    }
    EXPECT_FALSE(policies::is_known_policy("o(1)"));
}

TEST(PolicyFactory, UnknownNameThrowsNamingTheChoices) {
    try {
        (void)policies::make_policy("fancy");
        FAIL() << "make_policy accepted an unknown name";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("fancy"), std::string::npos);
        EXPECT_NE(what.find("lottery"), std::string::npos);
    }
}

TEST(PolicyFactory, KernelRejectsUnknownPolicyNameLoudly) {
    // The satellite fix: a mistyped experiment config must throw, never
    // silently run the whole experiment under BSD.
    sim::Engine engine;
    KernelConfig cfg;
    cfg.policy = "lotery";  // sic
    EXPECT_THROW(Kernel(engine, nullptr, cfg), std::invalid_argument);
    cfg.policy = "stride";
    EXPECT_NO_THROW(Kernel(engine, nullptr, cfg));
}

// ----- lottery -------------------------------------------------------------

TEST(LotteryPolicy, CpuProportionalToTickets) {
    Machine<LotteryPolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.pol->set_tickets(m.kernel.proc(a), 300.0);
    m.pol->set_tickets(m.kernel.proc(b), 100.0);
    m.run_for(sec(60));  // 600 draws: sigma of a's fraction ~ 1.8 %
    const double fa = m.cpu(a) / (m.cpu(a) + m.cpu(b));
    EXPECT_NEAR(fa, 0.75, 0.06);
}

TEST(LotteryPolicy, DefaultGrantFollowsNice) {
    // add() grants nice_to_weight(nice) base tickets, so entitlement
    // semantics match stride and CFS without explicit ticket surgery.
    Machine<LotteryPolicy> m;
    const Pid normal = m.hog("normal", 0);
    const Pid niced = m.hog("niced", 5);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(normal)),
                     static_cast<double>(policies::nice_to_weight(0)));
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(niced)),
                     static_cast<double>(policies::nice_to_weight(5)));
}

TEST(LotteryPolicy, CurrencyValuesHoldingsProRata) {
    Machine<LotteryPolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    const Pid c = m.hog("c");
    // A and B share a currency worth 1024 base tickets 1:3; C holds 1024
    // base directly. Effective: A 256, B 768, C 1024.
    const auto cur = m.pol->define_currency(1024.0);
    m.pol->set_tickets(m.kernel.proc(a), 100.0, cur);
    m.pol->set_tickets(m.kernel.proc(b), 300.0, cur);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(a)), 256.0);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(b)), 768.0);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(c)), 1024.0);
    // Inflating the currency's issue dilutes every holder, not the funding.
    m.pol->set_tickets(m.kernel.proc(a), 300.0, cur);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(a)), 512.0);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(b)), 512.0);
}

TEST(LotteryPolicy, TransferMovesTickets) {
    Machine<LotteryPolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.pol->set_tickets(m.kernel.proc(a), 400.0);
    m.pol->set_tickets(m.kernel.proc(b), 400.0);
    m.pol->transfer_tickets(m.kernel.proc(a), m.kernel.proc(b), 300.0);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(a)), 100.0);
    EXPECT_DOUBLE_EQ(m.pol->effective_tickets(m.kernel.proc(b)), 700.0);
}

TEST(LotteryPolicy, CompensationInflatesShortStints) {
    // Driven directly (no kernel): a proc that wins, runs 10 ms of a 100 ms
    // quantum, and re-queues holds a 10x compensation factor until the next
    // win consumes it (paper §3.4).
    LotteryPolicy pol({.quantum = msec(100)});
    Proc p = make_proc(1);
    pol.add(p);
    pol.enqueue(p);
    ASSERT_EQ(pol.pop(), &p);
    pol.charge(p, msec(10));
    pol.enqueue(p);
    EXPECT_DOUBLE_EQ(pol.compensation(p), 10.0);
    ASSERT_EQ(pol.pop(), &p);  // the win consumes the compensation
    pol.charge(p, msec(100));
    pol.enqueue(p);
    EXPECT_DOUBLE_EQ(pol.compensation(p), 1.0);  // full quantum: none
    pol.dequeue(p);
    pol.remove(p);
}

TEST(LotteryPolicy, SameSeedRunsAreBitIdentical) {
    // The determinism the zoo's JSON baseline rests on: the draw stream is a
    // pure function of the seed and the event order.
    const auto run = [](std::uint64_t seed) {
        Machine<LotteryPolicy> m({.seed = seed});
        const Pid a = m.hog("a");
        const Pid b = m.hog("b");
        const Pid c = m.hog("c");
        m.run_for(sec(10));
        return std::array<Duration, 3>{m.kernel.cpu_time(a), m.kernel.cpu_time(b),
                                       m.kernel.cpu_time(c)};
    };
    const auto first = run(42);
    EXPECT_EQ(first, run(42));
    EXPECT_NE(first, run(43));
}

// ----- stride --------------------------------------------------------------

TEST(StridePolicy, CpuProportionalToTickets) {
    Machine<StridePolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.pol->set_tickets(m.kernel.proc(a), 300.0);
    m.pol->set_tickets(m.kernel.proc(b), 100.0);
    m.run_for(sec(10));  // deterministic: tight tolerance
    const double fa = m.cpu(a) / (m.cpu(a) + m.cpu(b));
    EXPECT_NEAR(fa, 0.75, 0.02);
}

TEST(StridePolicy, LateJoinerOwesNoBackCredit) {
    // B joins 5 s in with equal tickets. The remain/global-pass mechanism
    // must give it a fair share from its join onward — not half of history.
    Machine<StridePolicy> m;
    const Pid a = m.hog("a");
    m.run_for(sec(5));
    const Pid b = m.hog("b");
    m.run_for(sec(10));
    EXPECT_NEAR(m.cpu(a), 10.0, 0.3);  // 5 alone + 5 of the shared 10
    EXPECT_NEAR(m.cpu(b), 5.0, 0.3);
    EXPECT_NEAR(m.cpu(a) + m.cpu(b), 15.0, 1e-6);
}

TEST(StridePolicy, TransferShiftsTheRatio) {
    Machine<StridePolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.pol->set_tickets(m.kernel.proc(a), 200.0);
    m.pol->set_tickets(m.kernel.proc(b), 200.0);
    m.run_for(sec(4));
    const double a_before = m.cpu(a);
    const double b_before = m.cpu(b);
    EXPECT_NEAR(a_before, b_before, 0.2);
    m.pol->transfer_tickets(m.kernel.proc(a), m.kernel.proc(b), 100.0);
    m.run_for(sec(6));  // 1:3 from here on
    EXPECT_NEAR((m.cpu(a) - a_before) / 6.0, 0.25, 0.03);
    EXPECT_NEAR((m.cpu(b) - b_before) / 6.0, 0.75, 0.03);
}

TEST(StridePolicy, SleeperNeitherBanksNorForfeits) {
    // A process asleep for a long stretch must come back with its old
    // remain, not a banked claim on the missed CPU (the paper's client_wait
    // semantics, via the charge-time remain snapshot).
    sim::Engine engine;
    KernelConfig kcfg;
    kcfg.policy = "stride";
    Kernel kernel(engine, nullptr, kcfg);
    const Pid a = kernel.spawn("a", 0, std::make_unique<CpuBoundBehavior>());
    const Pid b = kernel.spawn("b", 0, std::make_unique<CpuBoundBehavior>());
    engine.run_until(engine.now() + sec(2));
    kernel.send_signal(b, Signal::kStop);  // b leaves the competition
    engine.run_until(engine.now() + sec(6));
    kernel.send_signal(b, Signal::kCont);
    const Duration b_at_resume = kernel.cpu_time(b);
    engine.run_until(engine.now() + sec(4));
    // After resuming, b gets its proportional half of the remaining time —
    // about 2 of the last 4 s — rather than catching up on the 6 s it slept.
    EXPECT_NEAR(to_sec(kernel.cpu_time(b) - b_at_resume), 2.0, 0.3);
}

// ----- CFS -----------------------------------------------------------------

TEST(CfsPolicy, NiceWeightsGiveProportionalCpu) {
    Machine<CfsPolicy> m;
    const Pid normal = m.hog("normal", 0);
    const Pid niced = m.hog("niced", 5);
    m.run_for(sec(30));
    const double w0 = static_cast<double>(policies::nice_to_weight(0));
    const double w5 = static_cast<double>(policies::nice_to_weight(5));
    const double fa = m.cpu(normal) / (m.cpu(normal) + m.cpu(niced));
    EXPECT_NEAR(fa, w0 / (w0 + w5), 0.02);
}

TEST(CfsPolicy, EqualWeightsShareEvenly) {
    Machine<CfsPolicy> m;
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    const Pid c = m.hog("c");
    m.run_for(sec(9));
    EXPECT_NEAR(m.cpu(a), 3.0, 0.1);
    EXPECT_NEAR(m.cpu(b), 3.0, 0.1);
    EXPECT_NEAR(m.cpu(c), 3.0, 0.1);
}

TEST(CfsPolicy, LateJoinerStartsAtMinVruntime) {
    // min-vruntime normalization: a process spawned after 10 s of history
    // must not monopolize the CPU to "catch up" to the incumbents' vruntime.
    Machine<CfsPolicy> m;
    const Pid a = m.hog("a");
    m.run_for(sec(10));
    const Pid b = m.hog("b");
    m.run_for(sec(4));
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(b)), 2.0, 0.3);
}

}  // namespace
}  // namespace alps::os
