// Cross-kernel migration: Kernel::extradite/adopt directly, and the full
// ShardLink hand-off over a ShardedEngine's channels — accounting
// continuity, phase continuity, and serial/threaded mode equivalence.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "os/shard_link.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "util/assert.h"
#include "util/time.h"

namespace alps::os {
namespace {

using util::Duration;
using util::TimePoint;

TEST(ExtraditeAdopt, MovesAccountingAndPhaseBetweenKernels) {
    sim::Engine ea;
    sim::Engine eb;
    Kernel ka(ea);
    Kernel kb(eb);

    // Two compute-bound processes on A: one to keep the CPU busy, one (the
    // emigrant) queued behind it.
    const Pid stayer = ka.spawn("stayer", 1, std::make_unique<CpuBoundBehavior>());
    const Pid emigrant =
        ka.spawn("emigrant", 2, std::make_unique<FiniteCpuBehavior>(util::msec(250)));
    ASSERT_EQ(ka.running_pid(), stayer);

    // Let the round-robin (100 ms slices) hand the emigrant some CPU, then
    // catch it queued off-CPU.
    TimePoint t{};
    while (ka.cpu_time(emigrant) == Duration::zero() ||
           ka.running_pid() == emigrant) {
        t += util::msec(25);
        ASSERT_LT(t.since_epoch.count(), util::sec(2).count());
        ea.run_until(t);
    }
    ASSERT_NE(ka.running_pid(), emigrant);
    const Duration consumed_before = ka.cpu_time(emigrant);
    EXPECT_GT(consumed_before, Duration::zero());
    EXPECT_LT(consumed_before, util::msec(250));

    MigratedProc handle = ka.extradite(emigrant);
    EXPECT_FALSE(ka.exists(emigrant));
    EXPECT_TRUE(ka.pids_of_uid(2).empty());
    EXPECT_EQ(ka.extraditions(), 1u);
    EXPECT_EQ(handle.uid, 2u);
    EXPECT_EQ(handle.cpu_consumed, consumed_before);

    // B's clock is independent; adopt and let the rest of the finite
    // budget run out there.
    const Pid immigrant = kb.adopt(std::move(handle));
    EXPECT_EQ(kb.adoptions(), 1u);
    EXPECT_TRUE(kb.alive(immigrant));
    EXPECT_EQ(kb.proc(immigrant).name, "emigrant");
    EXPECT_EQ(kb.cpu_time(immigrant), consumed_before);

    eb.run_until(TimePoint{util::msec(400)});
    // The interrupted run phase resumed on B: total CPU across both kernels
    // is exactly the 250 ms budget the process was born with.
    EXPECT_FALSE(kb.alive(immigrant));  // exited after its budget
    EXPECT_EQ(kb.cpu_time(immigrant), util::msec(250));
}

TEST(ExtraditeAdopt, ContractRejectsRunningAndSleeping) {
    sim::Engine engine;
    Kernel kernel(engine);
    const Pid running = kernel.spawn("r", 1, std::make_unique<CpuBoundBehavior>());
    EXPECT_THROW((void)kernel.extradite(running), util::ContractViolation);

    const Pid sleeper = kernel.spawn(
        "s", 1, std::make_unique<PhasedIoBehavior>(util::msec(1), util::msec(100)));
    // The hog holds its 100 ms round-robin slice first; the sleeper runs its
    // 1 ms burst right after slice expiry and then blocks.
    engine.run_until(TimePoint{util::msec(105)});
    ASSERT_TRUE(kernel.is_blocked(sleeper));
    EXPECT_THROW((void)kernel.extradite(sleeper), util::ContractViolation);
}

// The full hand-off: 4 kernel groups on a sharded engine, a nomad process
// hopping group to group at staggered boundaries. Runs at 1, 2, and 4 shards
// in both modes; the nomad's consumed-CPU trajectory and every kernel's
// counters must be identical everywhere.
struct HopResult {
    std::vector<std::int64_t> consumed_at_hop;  ///< nomad rusage at each hop
    std::uint64_t completed = 0;
    bool operator==(const HopResult&) const = default;
};

HopResult run_nomad(unsigned nshards, sim::ShardedEngine::RunMode mode) {
    constexpr unsigned kGroups = 4;
    sim::ShardedEngine::Config cfg;
    cfg.shards = nshards;
    cfg.epoch = util::msec(10);
    sim::ShardedEngine sharded(cfg);

    std::vector<std::unique_ptr<Kernel>> kernels;
    for (unsigned g = 0; g < kGroups; ++g) {
        kernels.push_back(
            std::make_unique<Kernel>(sharded.engine(g % nshards)));
    }
    ShardLink link(sharded, kGroups);
    for (unsigned g = 0; g < kGroups; ++g) link.bind(g, *kernels[g]);

    // Each group gets a resident hog; group 0 additionally gets the nomad,
    // queued behind the hog so it is migratable at boundaries.
    for (unsigned g = 0; g < kGroups; ++g) {
        kernels[g]->spawn("hog", 1, std::make_unique<CpuBoundBehavior>());
    }
    // Which group currently hosts the nomad, and under what pid. Each entry
    // is read and written only by its group's shard thread (migrate runs on
    // the source shard, on_adopt on the destination shard), so ownership
    // crosses threads through the adoption message itself — no shared
    // mutable location, no race under the threaded mode.
    std::vector<char> hosts(kGroups, 0);
    std::vector<Pid> nomad_pid(kGroups, kNoPid);
    hosts[0] = 1;
    nomad_pid[0] = kernels[0]->spawn("nomad", 7, std::make_unique<CpuBoundBehavior>());

    HopResult result;
    link.on_adopt = [&](unsigned group, Pid pid) {
        hosts[group] = 1;
        nomad_pid[group] = pid;
    };
    // Publish hook: every 3rd boundary, the hosting group hands the nomad to
    // the next group (if it is migratable right now). Successive hops are at
    // least 3 epochs apart while adoption lands after 1, so at most one
    // group ever hosts.
    for (unsigned s = 0; s < nshards; ++s) {
        sharded.set_publish_hook(s, [&, s](unsigned, TimePoint t) {
            const auto boundary_index =
                static_cast<std::uint64_t>(t.since_epoch.count() / 10'000'000);
            if (boundary_index % 3 != 0) return;
            for (unsigned g = s; g < kGroups; g += nshards) {
                if (hosts[g] == 0) continue;
                Kernel& k = link.kernel(g);
                const Pid pid = nomad_pid[g];
                ALPS_ENSURE(k.alive(pid));
                const Proc& p = k.proc(pid);
                if (p.on_cpu >= 0 || p.state != RunState::kRunnable) continue;
                result.consumed_at_hop.push_back(k.cpu_time(pid).count());
                hosts[g] = 0;
                link.migrate(g, (g + 1) % kGroups, pid);
            }
        });
    }

    sharded.run_lockstep(TimePoint{util::msec(240)}, mode);
    result.completed = link.migrations_completed();
    EXPECT_EQ(result.completed, link.migrations_started());
    EXPECT_GT(result.completed, 0u);
    // The nomad survived its journey and kept accumulating CPU somewhere.
    unsigned host = kGroups;
    for (unsigned g = 0; g < kGroups; ++g) {
        if (hosts[g] != 0) host = g;
    }
    EXPECT_LT(host, kGroups);
    if (host < kGroups) {
        EXPECT_TRUE(link.kernel(host).alive(nomad_pid[host]));
        EXPECT_GT(link.kernel(host).cpu_time(nomad_pid[host]), Duration::zero());
    }
    return result;
}

TEST(ShardLinkNomad, TrajectoryInvariantAcrossShardCountsAndModes) {
    const HopResult baseline = run_nomad(1, sim::ShardedEngine::RunMode::kSerial);
    ASSERT_FALSE(baseline.consumed_at_hop.empty());
    for (const unsigned nshards : {2u, 4u}) {
        EXPECT_EQ(run_nomad(nshards, sim::ShardedEngine::RunMode::kSerial),
                  baseline)
            << "serial, shards=" << nshards;
        EXPECT_EQ(run_nomad(nshards, sim::ShardedEngine::RunMode::kThreaded),
                  baseline)
            << "threaded, shards=" << nshards;
    }
}

}  // namespace
}  // namespace alps::os
