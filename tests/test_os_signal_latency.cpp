// The stop-delivery latency model (KernelConfig::stop_latency_grid): a
// SIGSTOP aimed at the *running* process only takes effect at the next
// hardclock tick, as on a real kernel.
#include <gtest/gtest.h>

#include <memory>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;

struct GridMachine {
    sim::Engine engine;
    Kernel kernel;

    explicit GridMachine(Duration grid)
        : kernel(engine, nullptr,
                 KernelConfig{.stop_latency_grid = grid}) {}

    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(StopLatency, RunningProcessStopsAtNextTick) {
    GridMachine m(msec(10));
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(13));  // mid-tick
    m.kernel.send_signal(p, Signal::kStop);
    EXPECT_FALSE(m.kernel.proc(p).stopped);  // still in flight
    m.run_for(msec(8));                      // past the 20 ms boundary
    EXPECT_TRUE(m.kernel.proc(p).stopped);
    // It ran until the boundary: 20 ms of CPU, not 13.
    EXPECT_EQ(m.kernel.cpu_time(p), msec(20));
}

TEST(StopLatency, NonRunningProcessStopsImmediately) {
    GridMachine m(msec(10));
    m.kernel.spawn("a", 0, std::make_unique<CpuBoundBehavior>());
    const Pid b = m.kernel.spawn("b", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(13));  // a runs; b queued
    ASSERT_NE(m.kernel.running_pid(), b);
    m.kernel.send_signal(b, Signal::kStop);
    EXPECT_TRUE(m.kernel.proc(b).stopped);  // no delay off-CPU
}

TEST(StopLatency, ContCancelsInFlightStop) {
    GridMachine m(msec(10));
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(13));
    m.kernel.send_signal(p, Signal::kStop);
    m.kernel.send_signal(p, Signal::kCont);  // overrides before delivery
    m.run_for(msec(100));
    EXPECT_FALSE(m.kernel.proc(p).stopped);
    EXPECT_EQ(m.kernel.cpu_time(p), msec(113));  // never paused
}

TEST(StopLatency, DuplicateStopWhileInFlightIsIdempotent) {
    GridMachine m(msec(10));
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(5));
    m.kernel.send_signal(p, Signal::kStop);
    m.kernel.send_signal(p, Signal::kStop);
    m.run_for(msec(10));
    EXPECT_TRUE(m.kernel.proc(p).stopped);
    m.kernel.send_signal(p, Signal::kCont);
    m.run_for(msec(10));
    EXPECT_FALSE(m.kernel.proc(p).stopped);
}

TEST(StopLatency, KillCancelsInFlightStop) {
    GridMachine m(msec(10));
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(5));
    m.kernel.send_signal(p, Signal::kStop);
    m.kernel.send_signal(p, Signal::kKill);
    EXPECT_FALSE(m.kernel.alive(p));
    m.run_for(msec(20));  // the cancelled delivery must not fire
    EXPECT_FALSE(m.kernel.exists(p) && m.kernel.proc(p).stopped);
}

TEST(StopLatency, ZeroGridIsInstant) {
    GridMachine m(Duration::zero());
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(13));
    m.kernel.send_signal(p, Signal::kStop);
    EXPECT_TRUE(m.kernel.proc(p).stopped);
    EXPECT_EQ(m.kernel.cpu_time(p), msec(13));
}

TEST(StopLatency, StopLandingOnBoundaryWaitsOneFullTick) {
    GridMachine m(msec(10));
    const Pid p = m.kernel.spawn("hog", 0, std::make_unique<CpuBoundBehavior>());
    m.run_for(msec(20));  // exactly on a boundary
    m.kernel.send_signal(p, Signal::kStop);
    EXPECT_FALSE(m.kernel.proc(p).stopped);
    m.run_for(msec(10));
    EXPECT_TRUE(m.kernel.proc(p).stopped);
    EXPECT_EQ(m.kernel.cpu_time(p), msec(30));
}

}  // namespace
}  // namespace alps::os
