// Multi-CPU kernel tests (the SMP extension; the paper's host has one CPU).
// FreeBSD 4.x SMP semantics: one global run queue feeding all CPUs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct SmpMachine {
    sim::Engine engine;
    Kernel kernel;

    explicit SmpMachine(int ncpus)
        : kernel(engine, nullptr, KernelConfig{.ncpus = ncpus}) {}

    Pid hog(const std::string& name = "hog") {
        return kernel.spawn(name, 0, std::make_unique<CpuBoundBehavior>());
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(SmpKernel, TwoHogsOnTwoCpusBothRunFlatOut) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.run_for(sec(5));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(5));
    EXPECT_EQ(m.kernel.cpu_time(b), sec(5));
    EXPECT_EQ(m.kernel.busy_time(), sec(10));  // summed over CPUs
}

TEST(SmpKernel, SingleHogUsesOneCpuOnly) {
    SmpMachine m(4);
    const Pid a = m.hog("a");
    m.run_for(sec(3));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(3));  // one process <= one CPU
    EXPECT_EQ(m.kernel.busy_time(), sec(3));
}

TEST(SmpKernel, FourHogsOnTwoCpusSplitEvenly) {
    SmpMachine m(2);
    std::vector<Pid> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(m.hog("p" + std::to_string(i)));
    m.run_for(sec(10));
    Duration total{0};
    for (const Pid p : pids) {
        EXPECT_NEAR(to_sec(m.kernel.cpu_time(p)), 5.0, 0.5) << p;
        total += m.kernel.cpu_time(p);
    }
    EXPECT_EQ(total, sec(20));  // work conservation across CPUs
}

TEST(SmpKernel, RunningPidsPerCpuAreDistinct) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.run_for(msec(5));
    const Pid r0 = m.kernel.running_pid_on(0);
    const Pid r1 = m.kernel.running_pid_on(1);
    EXPECT_NE(r0, kNoPid);
    EXPECT_NE(r1, kNoPid);
    EXPECT_NE(r0, r1);
    EXPECT_TRUE((r0 == a && r1 == b) || (r0 == b && r1 == a));
}

TEST(SmpKernel, StopFreesACpuForTheQueue) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    const Pid c = m.hog("c");  // queued: 3 procs on 2 CPUs
    m.run_for(sec(6));
    // Roughly 4 s each (2 CPUs x 6 s over 3 procs).
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(c)), 4.0, 0.5);
    m.kernel.send_signal(a, Signal::kStop);
    const Duration b0 = m.kernel.cpu_time(b);
    const Duration c0 = m.kernel.cpu_time(c);
    m.run_for(sec(4));
    // b and c now own a CPU each.
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(b) - b0), 4.0, 0.1);
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(c) - c0), 4.0, 0.1);
}

TEST(SmpKernel, SleeperWakesOntoIdleCpu) {
    SmpMachine m(2);
    m.hog("a");
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(90)));
    m.run_for(sec(10));
    // One CPU is otherwise idle, so the 10% duty cycle is fully served.
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(io)), 1.0, 0.05);
}

TEST(SmpKernel, WakeBoostPreemptsOnBusyMachine) {
    SmpMachine m(2);
    m.hog("a");
    m.hog("b");
    m.hog("c");  // all CPUs busy, one queued
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(5), msec(45)));
    m.run_for(sec(10));
    // Demand is 10% of one CPU; the boost must deliver nearly all of it even
    // though every CPU is contended.
    EXPECT_GT(to_sec(m.kernel.cpu_time(io)), 0.8);
}

TEST(SmpKernel, DeterministicAcrossRuns) {
    auto run = [] {
        SmpMachine m(3);
        std::vector<Pid> pids;
        for (int i = 0; i < 7; ++i) pids.push_back(m.hog("p" + std::to_string(i)));
        m.run_for(sec(7));
        std::vector<Duration> out;
        for (const Pid p : pids) out.push_back(m.kernel.cpu_time(p));
        return out;
    };
    EXPECT_EQ(run(), run());
}

TEST(SmpKernel, InvalidCpuIndexViolatesContract) {
    SmpMachine m(2);
    EXPECT_THROW((void)m.kernel.running_pid_on(2), util::ContractViolation);
    EXPECT_THROW((void)m.kernel.running_pid_on(-1), util::ContractViolation);
}

TEST(SmpKernel, ZeroCpusViolatesContract) {
    sim::Engine engine;
    EXPECT_THROW(Kernel(engine, nullptr, KernelConfig{.ncpus = 0}),
                 util::ContractViolation);
}

}  // namespace
}  // namespace alps::os
