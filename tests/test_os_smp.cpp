// Multi-CPU kernel tests (the SMP extension; the paper's host has one CPU).
// FreeBSD 4.x SMP semantics: one global run queue feeding all CPUs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct SmpMachine {
    sim::Engine engine;
    Kernel kernel;

    explicit SmpMachine(int ncpus)
        : kernel(engine, nullptr, KernelConfig{.ncpus = ncpus}) {}

    Pid hog(const std::string& name = "hog") {
        return kernel.spawn(name, 0, std::make_unique<CpuBoundBehavior>());
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(SmpKernel, TwoHogsOnTwoCpusBothRunFlatOut) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.run_for(sec(5));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(5));
    EXPECT_EQ(m.kernel.cpu_time(b), sec(5));
    EXPECT_EQ(m.kernel.busy_time(), sec(10));  // summed over CPUs
}

TEST(SmpKernel, SingleHogUsesOneCpuOnly) {
    SmpMachine m(4);
    const Pid a = m.hog("a");
    m.run_for(sec(3));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(3));  // one process <= one CPU
    EXPECT_EQ(m.kernel.busy_time(), sec(3));
}

TEST(SmpKernel, FourHogsOnTwoCpusSplitEvenly) {
    SmpMachine m(2);
    std::vector<Pid> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(m.hog("p" + std::to_string(i)));
    m.run_for(sec(10));
    Duration total{0};
    for (const Pid p : pids) {
        EXPECT_NEAR(to_sec(m.kernel.cpu_time(p)), 5.0, 0.5) << p;
        total += m.kernel.cpu_time(p);
    }
    EXPECT_EQ(total, sec(20));  // work conservation across CPUs
}

TEST(SmpKernel, RunningPidsPerCpuAreDistinct) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    m.run_for(msec(5));
    const Pid r0 = m.kernel.running_pid_on(0);
    const Pid r1 = m.kernel.running_pid_on(1);
    EXPECT_NE(r0, kNoPid);
    EXPECT_NE(r1, kNoPid);
    EXPECT_NE(r0, r1);
    EXPECT_TRUE((r0 == a && r1 == b) || (r0 == b && r1 == a));
}

TEST(SmpKernel, StopFreesACpuForTheQueue) {
    SmpMachine m(2);
    const Pid a = m.hog("a");
    const Pid b = m.hog("b");
    const Pid c = m.hog("c");  // queued: 3 procs on 2 CPUs
    m.run_for(sec(6));
    // Roughly 4 s each (2 CPUs x 6 s over 3 procs).
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(c)), 4.0, 0.5);
    m.kernel.send_signal(a, Signal::kStop);
    const Duration b0 = m.kernel.cpu_time(b);
    const Duration c0 = m.kernel.cpu_time(c);
    m.run_for(sec(4));
    // b and c now own a CPU each.
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(b) - b0), 4.0, 0.1);
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(c) - c0), 4.0, 0.1);
}

TEST(SmpKernel, SleeperWakesOntoIdleCpu) {
    SmpMachine m(2);
    m.hog("a");
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(90)));
    m.run_for(sec(10));
    // One CPU is otherwise idle, so the 10% duty cycle is fully served.
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(io)), 1.0, 0.05);
}

TEST(SmpKernel, WakeBoostPreemptsOnBusyMachine) {
    SmpMachine m(2);
    m.hog("a");
    m.hog("b");
    m.hog("c");  // all CPUs busy, one queued
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(5), msec(45)));
    m.run_for(sec(10));
    // Demand is 10% of one CPU; the boost must deliver nearly all of it even
    // though every CPU is contended.
    EXPECT_GT(to_sec(m.kernel.cpu_time(io)), 0.8);
}

TEST(SmpKernel, DeterministicAcrossRuns) {
    auto run = [] {
        SmpMachine m(3);
        std::vector<Pid> pids;
        for (int i = 0; i < 7; ++i) pids.push_back(m.hog("p" + std::to_string(i)));
        m.run_for(sec(7));
        std::vector<Duration> out;
        for (const Pid p : pids) out.push_back(m.kernel.cpu_time(p));
        return out;
    };
    EXPECT_EQ(run(), run());
}

// ----- per-CPU scheduling domains (KernelConfig::percpu_queues) -----

struct PercpuMachine {
    sim::Engine engine;
    Kernel kernel;

    explicit PercpuMachine(int ncpus, std::string policy = "bsd")
        : kernel(engine, nullptr,
                 KernelConfig{.ncpus = ncpus,
                              .policy = std::move(policy),
                              .percpu_queues = true}) {}

    Pid hog(const std::string& name, int home_cpu = -1) {
        return kernel.spawn(name, 0, std::make_unique<CpuBoundBehavior>(),
                            /*nice=*/0, home_cpu);
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(PercpuKernel, IdleCpuStealsFromLoadedPeer) {
    PercpuMachine m(2);
    // Both hogs pinned to CPU 0: CPU 1 starts idle and must steal one.
    const Pid a = m.hog("a", 0);
    const Pid b = m.hog("b", 0);
    m.run_for(sec(5));
    EXPECT_GT(m.kernel.steals(), 0u);
    EXPECT_EQ(m.kernel.cpu_time(a) + m.kernel.cpu_time(b), sec(10));
    EXPECT_EQ(m.kernel.cpu_time(a), sec(5));
    EXPECT_EQ(m.kernel.cpu_time(b), sec(5));
}

TEST(PercpuKernel, RebalanceSpreadsSkewedLoad) {
    PercpuMachine m(4);
    // Six hogs all pinned to CPU 0; steal seeds the idle CPUs and the
    // schedcpu rebalance keeps the queues level afterwards.
    std::vector<Pid> pids;
    for (int i = 0; i < 6; ++i) pids.push_back(m.hog("p" + std::to_string(i), 0));
    m.run_for(sec(12));
    Duration total{0};
    for (const Pid p : pids) total += m.kernel.cpu_time(p);
    EXPECT_EQ(total, sec(48));  // work conservation: 4 CPUs x 12 s
    // Balancing settles at a 2/2/1/1 spread (rebalance stops below a
    // spread of 2), so shares land between 6 s and 12 s. Without any
    // balancing all six would share CPU 0 at 2 s each — the floor below
    // asserts the queues actually spread out.
    for (const Pid p : pids) {
        EXPECT_GE(to_sec(m.kernel.cpu_time(p)), 5.0) << p;
        EXPECT_LE(to_sec(m.kernel.cpu_time(p)), 12.0) << p;
    }
    EXPECT_GT(m.kernel.migrations(), 0u);
}

TEST(PercpuKernel, PinnedSingleHogsNeverMigrate) {
    PercpuMachine m(2);
    // One hog per CPU: load is already level, so no steal or rebalance
    // traffic may occur.
    const Pid a = m.hog("a", 0);
    const Pid b = m.hog("b", 1);
    m.run_for(sec(5));
    EXPECT_EQ(m.kernel.steals(), 0u);
    EXPECT_EQ(m.kernel.migrations(), 0u);
    EXPECT_EQ(m.kernel.cpu_time(a), sec(5));
    EXPECT_EQ(m.kernel.cpu_time(b), sec(5));
    EXPECT_EQ(m.kernel.proc(a).home_cpu, 0);
    EXPECT_EQ(m.kernel.proc(b).home_cpu, 1);
}

TEST(PercpuKernel, WorkConservingForAllPolicies) {
    for (const char* policy : {"bsd", "lottery", "stride", "cfs"}) {
        PercpuMachine m(2, policy);
        std::vector<Pid> pids;
        // Default placement (round-robin by pid) plus one deliberate skew.
        for (int i = 0; i < 3; ++i) pids.push_back(m.hog("p" + std::to_string(i)));
        pids.push_back(m.hog("pinned", 0));
        m.run_for(sec(8));
        Duration total{0};
        for (const Pid p : pids) total += m.kernel.cpu_time(p);
        EXPECT_EQ(total, sec(16)) << policy;  // 2 CPUs x 8 s, no idle gaps
    }
}

TEST(PercpuKernel, SleeperWakesOnHomeCpu) {
    PercpuMachine m(2);
    m.hog("a", 0);
    const Pid io = m.kernel.spawn(
        "io", 0, std::make_unique<PhasedIoBehavior>(msec(10), msec(90)),
        /*nice=*/0, /*home_cpu=*/1);
    m.run_for(sec(10));
    // CPU 1 is idle except for the 10% duty cycle, which is fully served.
    EXPECT_NEAR(to_sec(m.kernel.cpu_time(io)), 1.0, 0.05);
    EXPECT_EQ(m.kernel.proc(io).home_cpu, 1);
}

TEST(PercpuKernel, SpawnRejectsOutOfRangeHomeCpu) {
    PercpuMachine m(2);
    EXPECT_THROW(m.hog("bad", 2), util::ContractViolation);
    EXPECT_THROW(m.hog("bad", -2), util::ContractViolation);
}

TEST(SmpKernelDeathTest, InvalidCpuIndexAbortsViaGuard) {
    // An out-of-range CPU index is corrupted topology bookkeeping: the
    // accessors hit ALPS_GUARD (fprintf + abort), never index out of bounds
    // and never unwind (DESIGN.md §10 — guards stay armed in release).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    SmpMachine m(2);
    EXPECT_DEATH((void)m.kernel.running_pid_on(2), "corruption guard");
    EXPECT_DEATH((void)m.kernel.running_pid_on(-1), "corruption guard");
    EXPECT_DEATH((void)m.kernel.policy_on(2), "corruption guard");
    EXPECT_DEATH((void)m.kernel.policy_on(-1), "corruption guard");
}

TEST(SmpKernel, ZeroCpusViolatesContract) {
    sim::Engine engine;
    EXPECT_THROW(Kernel(engine, nullptr, KernelConfig{.ncpus = 0}),
                 util::ContractViolation);
}

}  // namespace
}  // namespace alps::os
