// Differential schedule-fingerprint guard for the per-CPU run-queue kernel.
//
// The refactor from one global run queue to per-CPU queues (scheduling
// domains) must be *semantically invisible* in its default shared-queue
// mode: every seeded run has to reproduce the exact schedule of the
// pre-refactor kernel. This test pins that schedule — which pid runs on
// which CPU at every simulated millisecond, plus end-state accounting — as
// an FNV-1a fingerprint per (policy, ncpus, workload) cell, compared against
// a fixture generated before the refactor (the test_sim_wheel_diff.cpp /
// test_sim_replay.cpp pattern, applied to the kernel layer).
//
// Two scripted workloads per cell keep the fingerprint scheduling-rich:
// compute hogs across nice levels, phased I/O (wake-boost preemption),
// a finite job that exits, SIGSTOP/SIGCONT churn, a mid-run spawn, and a
// kill + reap. All four zoo policies run at ncpus 1, 2, and 4.
//
// Regenerate (only when the *intended* schedule changes, never to paper
// over an accidental divergence):
//   ALPS_REGEN_GOLDEN=1 ./test_os --gtest_filter='OsSmpDiff.*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/time.h"

namespace alps::os {
namespace {

using util::TimePoint;

#ifndef ALPS_GOLDEN_DIR
#error "ALPS_GOLDEN_DIR must point at tests/golden"
#endif

std::string golden_path() {
    return std::string(ALPS_GOLDEN_DIR) + "/os_smp_schedule.golden";
}

/// FNV-1a over a stream of 64-bit words (byte-at-a-time, endian-fixed).
struct Fingerprint {
    std::uint64_t h = 1469598103934665603ull;
    void mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    }
    void mix_i64(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
};

/// Runs one scripted scenario and fingerprints its schedule.
std::uint64_t schedule_fingerprint(const std::string& policy, int ncpus,
                                   int wl, bool percpu = false) {
    sim::Engine engine;
    KernelConfig cfg;
    cfg.ncpus = ncpus;
    cfg.policy = policy;
    cfg.percpu_queues = percpu;
    // Workload 1 also models delayed SIGSTOP delivery (the hardclock grid).
    cfg.stop_latency_grid = wl == 1 ? util::msec(10) : util::Duration{0};
    Kernel kernel(engine, nullptr, cfg);

    std::vector<Pid> pids;
    auto hog = [&](int nice) {
        pids.push_back(kernel.spawn("p" + std::to_string(pids.size()),
                                    /*uid=*/100,
                                    std::make_unique<CpuBoundBehavior>(), nice));
    };
    if (wl == 0) {
        // Compute-heavy: oversubscribed hogs over three nice levels, one
        // finite job that exits mid-run, one I/O process.
        for (int i = 0; i < 2 * ncpus + 1; ++i) hog(i % 3);
        pids.push_back(kernel.spawn(
            "fin", /*uid=*/101, std::make_unique<FiniteCpuBehavior>(util::msec(50))));
        pids.push_back(kernel.spawn(
            "io", /*uid=*/101,
            std::make_unique<PhasedIoBehavior>(util::msec(3), util::msec(7))));
    } else {
        // I/O-heavy: one hog per CPU plus three staggered duty cycles.
        for (int i = 0; i < ncpus; ++i) hog(0);
        for (int i = 0; i < 3; ++i) {
            pids.push_back(kernel.spawn(
                "io" + std::to_string(i), /*uid=*/102,
                std::make_unique<PhasedIoBehavior>(
                    util::msec(2 + 3 * i), util::msec(11 - 2 * i),
                    util::msec(5 * i))));
        }
    }
    // Signal churn against the same schedule in every cell: stop/cont the
    // second process, spawn a late arrival, kill + reap the first.
    engine.schedule_at(TimePoint{} + util::msec(61),
                       [&] { kernel.send_signal(pids[1], Signal::kStop); });
    engine.schedule_at(TimePoint{} + util::msec(101), [&] { hog(1); });
    engine.schedule_at(TimePoint{} + util::msec(167),
                       [&] { kernel.send_signal(pids[1], Signal::kCont); });
    engine.schedule_at(TimePoint{} + util::msec(251), [&] {
        kernel.send_signal(pids[0], Signal::kKill);
        kernel.reap(pids[0]);
    });

    Fingerprint fp;
    constexpr int kSamples = 400;  // 1 ms grid over the whole run
    for (int t = 1; t <= kSamples; ++t) {
        engine.schedule_at(TimePoint{} + util::msec(t), [&fp, &kernel, ncpus] {
            for (int c = 0; c < ncpus; ++c) {
                fp.mix_i64(kernel.running_pid_on(c));
            }
        });
    }
    engine.run_until(TimePoint{} + util::msec(kSamples) + util::usec(1));

    fp.mix(kernel.context_switches());
    for (const Pid pid : pids) {
        if (!kernel.exists(pid)) {
            fp.mix(0xdeadull);  // reaped
            continue;
        }
        const Proc& p = kernel.proc(pid);
        fp.mix_i64(p.cpu_consumed.count());
        fp.mix(static_cast<std::uint64_t>(p.dispatches));
        fp.mix(static_cast<std::uint64_t>(p.state));
    }
    return fp.h;
}

std::string hex(std::uint64_t v) {
    std::ostringstream out;
    out << std::hex;
    out.width(16);
    out.fill('0');
    out << v;
    return out.str();
}

const char* const kPolicies[] = {"bsd", "lottery", "stride", "cfs"};
const int kNcpus[] = {1, 2, 4};

TEST(OsSmpDiff, ScheduleMatchesGolden) {
    std::vector<std::pair<std::string, std::string>> cells;
    for (const char* policy : kPolicies) {
        for (const int ncpus : kNcpus) {
            for (int wl = 0; wl < 2; ++wl) {
                std::ostringstream key;
                key << "policy=" << policy << " ncpus=" << ncpus
                    << " wl=" << wl;
                cells.emplace_back(key.str(),
                                   hex(schedule_fingerprint(policy, ncpus, wl)));
            }
        }
    }

    if (std::getenv("ALPS_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(golden_path(), std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
        for (const auto& [key, fpr] : cells) f << key << " fp=" << fpr << "\n";
        GTEST_SKIP() << "regenerated " << golden_path();
    }

    std::ifstream f(golden_path(), std::ios::binary);
    ASSERT_TRUE(f.good()) << "missing fixture " << golden_path()
                          << " (run with ALPS_REGEN_GOLDEN=1 to create)";
    std::map<std::string, std::string> golden;
    std::string line;
    while (std::getline(f, line)) {
        const auto at = line.rfind(" fp=");
        ASSERT_NE(at, std::string::npos) << "malformed golden line: " << line;
        golden[line.substr(0, at)] = line.substr(at + 4);
    }
    for (const auto& [key, fpr] : cells) {
        ASSERT_TRUE(golden.count(key)) << "no golden cell for " << key;
        EXPECT_EQ(golden[key], fpr)
            << key << ": schedule diverged from the pre-refactor kernel";
    }
}

/// The fingerprint must be stable within one process run (no global state,
/// no address-order dependence) before it can mean anything across builds.
TEST(OsSmpDiff, FingerprintStableAcrossRepeats) {
    EXPECT_EQ(schedule_fingerprint("bsd", 2, 0),
              schedule_fingerprint("bsd", 2, 0));
    EXPECT_EQ(schedule_fingerprint("lottery", 4, 1),
              schedule_fingerprint("lottery", 4, 1));
}

/// With one CPU there is exactly one domain, no steal traffic, and no
/// rebalance candidates, so the per-CPU-queue kernel must reproduce the
/// shared-queue schedule bit-for-bit — the strongest equivalence the
/// refactor admits (at ncpus > 1 per-CPU affinity legitimately schedules
/// differently from a shared queue).
TEST(OsSmpDiff, PercpuSingleCpuMatchesSharedQueue) {
    for (const char* policy : kPolicies) {
        for (int wl = 0; wl < 2; ++wl) {
            EXPECT_EQ(schedule_fingerprint(policy, 1, wl, /*percpu=*/false),
                      schedule_fingerprint(policy, 1, wl, /*percpu=*/true))
                << "policy=" << policy << " wl=" << wl;
        }
    }
}

/// Per-CPU mode is deterministic at every core count, like the shared queue.
TEST(OsSmpDiff, PercpuFingerprintDeterministic) {
    for (const char* policy : kPolicies) {
        EXPECT_EQ(schedule_fingerprint(policy, 4, 0, /*percpu=*/true),
                  schedule_fingerprint(policy, 4, 0, /*percpu=*/true))
            << policy;
    }
}

}  // namespace
}  // namespace alps::os
