// Randomized stress tests of the simulated kernel: arbitrary mixes of
// compute, phased-I/O, and short-lived processes, plus random signals, with
// global invariants checked throughout. Parameterized over seeds.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace alps::os {
namespace {

using util::Duration;
using util::msec;
using util::sec;

class KernelStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelStressTest, InvariantsHoldUnderRandomChurn) {
    sim::Engine engine;
    Kernel kernel(engine);
    util::Rng rng(GetParam());

    std::vector<Pid> pids;
    auto spawn_random = [&] {
        const double roll = rng.next_double();
        std::unique_ptr<Behavior> b;
        if (roll < 0.4) {
            b = std::make_unique<CpuBoundBehavior>();
        } else if (roll < 0.7) {
            b = std::make_unique<PhasedIoBehavior>(
                rng.uniform_duration(msec(1), msec(30)),
                rng.uniform_duration(msec(5), msec(200)));
        } else {
            b = std::make_unique<FiniteCpuBehavior>(
                rng.uniform_duration(msec(10), msec(500)));
        }
        pids.push_back(kernel.spawn("p" + std::to_string(pids.size()),
                                    static_cast<Uid>(rng.uniform_int(0, 3)),
                                    std::move(b)));
    };
    for (int i = 0; i < 6; ++i) spawn_random();

    Duration busy_before = kernel.busy_time();
    for (int step = 0; step < 400; ++step) {
        engine.run_until(engine.now() + rng.uniform_duration(msec(1), msec(60)));

        // Random management actions.
        const double roll = rng.next_double();
        const Pid victim =
            pids[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(pids.size()) - 1))];
        if (roll < 0.25 && kernel.alive(victim)) {
            kernel.send_signal(victim, Signal::kStop);
        } else if (roll < 0.5 && kernel.alive(victim)) {
            kernel.send_signal(victim, Signal::kCont);
        } else if (roll < 0.55 && kernel.alive(victim)) {
            kernel.send_signal(victim, Signal::kKill);
        } else if (roll < 0.65 && pids.size() < 40) {
            spawn_random();
        }

        // --- Invariants ---
        // Busy time is monotone and never exceeds wall time.
        const Duration busy = kernel.busy_time();
        ASSERT_GE(busy, busy_before);
        ASSERT_LE(busy.count(), engine.now().since_epoch.count());
        busy_before = busy;

        // Per-process CPU times are monotone, non-negative, and sum to the
        // kernel's busy time (work conservation).
        Duration total{0};
        for (const Pid pid : pids) {
            if (!kernel.exists(pid)) continue;
            const Duration t = kernel.cpu_time(pid);
            ASSERT_GE(t, Duration::zero());
            total += t;
        }
        ASSERT_EQ(total, busy);

        // At most one process is "running", and it must be eligible.
        const Pid running = kernel.running_pid();
        if (running != kNoPid) {
            const Proc& p = kernel.proc(running);
            ASSERT_EQ(p.state, RunState::kRunning);
            ASSERT_FALSE(p.stopped);
        }

        // A stopped process never holds the CPU; zombies never run.
        for (const Pid pid : pids) {
            if (!kernel.exists(pid)) continue;
            const Proc& p = kernel.proc(pid);
            if (p.stopped) {
                ASSERT_NE(p.state, RunState::kRunning);
            }
            if (p.state == RunState::kZombie) {
                ASSERT_NE(pid, running);
            }
        }
    }
}

TEST_P(KernelStressTest, DeterministicGivenSeed) {
    auto run = [&](std::uint64_t seed) {
        sim::Engine engine;
        Kernel kernel(engine);
        util::Rng rng(seed);
        std::vector<Pid> pids;
        for (int i = 0; i < 8; ++i) {
            pids.push_back(kernel.spawn(
                "p", 0,
                std::make_unique<PhasedIoBehavior>(
                    rng.uniform_duration(msec(1), msec(20)),
                    rng.uniform_duration(msec(5), msec(100)))));
        }
        for (int step = 0; step < 100; ++step) {
            engine.run_until(engine.now() + msec(37));
            const Pid v = pids[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(pids.size()) - 1))];
            kernel.send_signal(v, rng.next_double() < 0.5 ? Signal::kStop
                                                          : Signal::kCont);
        }
        Duration sum{0};
        for (const Pid pid : pids) sum += kernel.cpu_time(pid);
        return std::pair{sum, kernel.context_switches()};
    };
    EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelStressTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace alps::os
