// The policy-matrix leg: one binary that check.sh runs once per kernel
// policy (ALPS_KERNEL_POLICY=bsd|lottery|stride|cfs). Every assertion here
// must hold on *all four* kernels — these are the invariants ALPS promises
// regardless of what scheduler runs underneath it — plus a harness-level
// sweep that proves the whole zoo is bit-identical for any --jobs value.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "harness/registry.h"
#include "harness/runner.h"
#include "os/policies/factory.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps {
namespace {

std::string policy_under_test() {
    const char* v = std::getenv("ALPS_KERNEL_POLICY");
    return (v != nullptr && *v != '\0') ? v : "bsd";
}

workload::SimRunConfig matrix_config(workload::ShareModel model) {
    workload::SimRunConfig cfg;
    cfg.shares = workload::make_shares(model, 5);
    cfg.quantum = util::msec(10);
    cfg.measure_cycles = 40;
    cfg.warmup_cycles = 5;
    cfg.kernel_policy = policy_under_test();
    return cfg;
}

TEST(PolicyMatrix, PolicyNameIsKnown) {
    ASSERT_TRUE(os::policies::is_known_policy(policy_under_test()))
        << "ALPS_KERNEL_POLICY=" << policy_under_test();
}

TEST(PolicyMatrix, AlpsHoldsSharesOnThisKernel) {
    const auto r =
        workload::run_cpu_bound_experiment(matrix_config(workload::ShareModel::kLinear));
    EXPECT_FALSE(r.timed_out);
    EXPECT_GE(r.cycles_completed, 40u);
    // Loose cross-policy bounds: the per-policy numbers live in
    // BENCH_policy_zoo.json; here we only require that ALPS keeps working.
    EXPECT_LT(r.mean_rms_error, 0.35);
    EXPECT_GT(r.fairness.time_ratio, 0.4);
    EXPECT_LT(r.fairness.max_complaint, 1.0);  // nobody fully starved
    EXPECT_GE(r.fairness.cycles, 30u);
}

TEST(PolicyMatrix, SkewedSharesStayBounded) {
    const auto r =
        workload::run_cpu_bound_experiment(matrix_config(workload::ShareModel::kSkewed));
    EXPECT_FALSE(r.timed_out);
    EXPECT_LT(r.mean_rms_error, 0.40);
    EXPECT_GT(r.fairness.time_ratio, 0.3);
}

TEST(PolicyMatrix, StrideEngineControllerWorksOnThisKernel) {
    // The A/B controller (stride pass/stride instead of the ALPS allowance
    // loop) keeps exactly one entity runnable, so its accuracy should be
    // nearly kernel-independent — it must hold on every policy.
    const auto r =
        workload::run_stride_engine_experiment(matrix_config(workload::ShareModel::kLinear));
    EXPECT_FALSE(r.timed_out);
    EXPECT_GE(r.cycles_completed, 40u);
    EXPECT_LT(r.mean_rms_error, 0.05);
    EXPECT_GT(r.fairness.time_ratio, 0.9);
}

TEST(PolicyMatrix, SameConfigRunsAreBitIdentical) {
    // Simulated time plus a fixed policy_seed make every kernel — including
    // the lottery's randomized draws — a pure function of the config.
    const auto cfg = matrix_config(workload::ShareModel::kLinear);
    const auto a = workload::run_cpu_bound_experiment(cfg);
    const auto b = workload::run_cpu_bound_experiment(cfg);
    EXPECT_EQ(a.mean_rms_error, b.mean_rms_error);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.measurements, b.measurements);
    EXPECT_EQ(a.fairness.time_ratio, b.fairness.time_ratio);
    EXPECT_EQ(a.fairness.max_complaint, b.fairness.max_complaint);
}

// A miniature policy_zoo as a harness experiment: one task per kernel
// policy. Mirrors bench/exp_policy_zoo.cpp's task body so the --jobs
// determinism proven here transfers to the committed BENCH baseline.
harness::Experiment mini_zoo() {
    harness::Experiment e;
    e.name = "mini_policy_zoo";
    e.make_tasks = [](const harness::SweepOptions&) {
        std::vector<harness::Task> tasks;
        for (const auto& info : os::policies::known_policies()) {
            harness::Task task;
            task.point = std::string(info.name);
            const std::string policy(info.name);
            task.fn = [policy](const harness::TaskContext& ctx) {
                workload::SimRunConfig cfg;
                cfg.shares = workload::make_shares(workload::ShareModel::kLinear, 5);
                cfg.quantum = util::msec(10);
                cfg.measure_cycles = 20;
                cfg.warmup_cycles = 5;
                cfg.kernel_policy = policy;
                cfg.policy_seed = ctx.seed;
                cfg.metrics = ctx.metrics;
                const auto r = workload::run_cpu_bound_experiment(cfg);
                return harness::Result{}
                    .metric("rms_error_pct", 100.0 * r.mean_rms_error)
                    .metric("time_ratio", r.fairness.time_ratio);
            };
            tasks.push_back(std::move(task));
        }
        return tasks;
    };
    return e;
}

TEST(PolicyMatrix, ZooSweepIsJobsIndependent) {
    // The ISSUE's acceptance bar: a same-seed lottery sweep is bit-identical
    // whether tasks run serially or race across three workers. Task seeds
    // derive from (sweep seed, index), never from thread identity.
    const auto run = [](unsigned jobs) {
        harness::SweepOptions options;
        options.jobs = jobs;
        options.seed = 0xa1b5;
        return harness::run_sweep(mini_zoo(), options, nullptr);
    };
    const auto serial = run(1);
    const auto parallel = run(3);
    EXPECT_EQ(serial.task_errors, 0);
    EXPECT_EQ(harness::report_to_json(serial, /*include_run=*/false).dump(2),
              harness::report_to_json(parallel, /*include_run=*/false).dump(2));
}

}  // namespace
}  // namespace alps
