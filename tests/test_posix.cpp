// POSIX backend tests. Parser tests are pure; the process-control tests fork
// real children and exercise /proc + signals; the end-to-end test runs the
// real ALPS loop briefly. Tolerances are generous: the host is shared.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <thread>

#include "alps/group_control.h"
#include "posix/host.h"
#include "posix/proc_stat.h"
#include "posix/runner.h"
#include "posix/spawn.h"

namespace alps::posix {
namespace {

using util::msec;
using util::sec;

// ----------------------------------------------------------------------------
// /proc parsing (pure)

TEST(ProcStatParse, TypicalLine) {
    const auto st = parse_proc_stat(
        "1234 (myproc) R 1 1234 1234 0 -1 4194304 100 0 0 0 250 50 0 0 20 0 1 0 "
        "12345 1000000 100 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->pid, 1234);
    EXPECT_EQ(st->comm, "myproc");
    EXPECT_EQ(st->state, 'R');
    EXPECT_EQ(st->utime_ticks, 250u);
    EXPECT_EQ(st->stime_ticks, 50u);
    EXPECT_EQ(st->starttime_ticks, 12345u);  // field 22, the pid-reuse guard
}

TEST(ProcStatParse, CommWithSpacesAndParens) {
    const auto st = parse_proc_stat(
        "77 (weird (name) here) S 1 1 1 0 -1 0 0 0 0 0 7 3 0 0 20 0 1 0 0 0 0 0 "
        "0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->comm, "weird (name) here");
    EXPECT_EQ(st->state, 'S');
    EXPECT_EQ(st->utime_ticks, 7u);
    EXPECT_EQ(st->stime_ticks, 3u);
    EXPECT_EQ(st->starttime_ticks, 0u);
}

TEST(ProcStatParse, MalformedInputsRejected) {
    EXPECT_FALSE(parse_proc_stat("").has_value());
    EXPECT_FALSE(parse_proc_stat("1234").has_value());
    EXPECT_FALSE(parse_proc_stat("1234 (x)").has_value());
    EXPECT_FALSE(parse_proc_stat("1234 (x) R 1 2").has_value());  // too few fields
    EXPECT_FALSE(parse_proc_stat("x (y) R 1 2 3 4 5 6 7 8 9 10 11 12 13").has_value());
}

TEST(ProcStatParse, TruncatedBeforeStarttimeRejected) {
    // 19 fields after the comm: utime/stime are present but starttime (the
    // 20th) is not — a torn read must not yield a half-valid ProcStat.
    EXPECT_FALSE(parse_proc_stat(
                     "9 (x) R 1 9 9 0 -1 0 100 0 0 0 250 50 0 0 20 0 1 0")
                     .has_value());
    // One more field (starttime) and the same line parses.
    const auto st = parse_proc_stat(
        "9 (x) R 1 9 9 0 -1 0 100 0 0 0 250 50 0 0 20 0 1 0 777");
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->starttime_ticks, 777u);
}

TEST(ProcStatParse, StateClassification) {
    EXPECT_TRUE(state_is_blocked('S'));
    EXPECT_TRUE(state_is_blocked('D'));
    EXPECT_FALSE(state_is_blocked('R'));
    EXPECT_FALSE(state_is_blocked('T'));  // stopped by ALPS, not "blocked"
    EXPECT_TRUE(state_is_dead('Z'));
    EXPECT_TRUE(state_is_dead('X'));
    EXPECT_FALSE(state_is_dead('R'));
}

TEST(SchedstatParse, FirstFieldIsOnCpuNanoseconds) {
    const auto d = parse_schedstat("123456789 55 42\n");
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->count(), 123456789);
    EXPECT_FALSE(parse_schedstat("").has_value());
    EXPECT_FALSE(parse_schedstat("abc def").has_value());
}

TEST(TicksToDuration, UsesUserHz) {
    // USER_HZ is virtually always 100 on Linux.
    const auto d = ticks_to_duration(100);
    EXPECT_NEAR(util::to_sec(d), 1.0, 0.5);
}

// ----------------------------------------------------------------------------
// Real-process host

TEST(PosixHost, ReadsOwnProcess) {
    PosixProcessHost host;
    const core::Sample s = host.read_pid(::getpid());
    EXPECT_TRUE(s.alive);
    EXPECT_GT(s.cpu_time.count(), 0);
}

TEST(PosixHost, MissingPidReportsDead) {
    PosixProcessHost host;
    // Pid 4194300 is near pid_max and almost certainly absent; even if it
    // exists the test only requires a well-formed answer.
    const core::Sample s = host.read_pid(4194300);
    if (!s.alive) SUCCEED();
}

TEST(PosixHost, BusyChildAccumulatesCpu) {
    PosixProcessHost host;
    ChildSet children;
    const pid_t pid = children.add_busy();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const core::Sample s1 = host.read_pid(pid);
    ASSERT_TRUE(s1.alive);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const core::Sample s2 = host.read_pid(pid);
    EXPECT_GT(s2.cpu_time.count(), s1.cpu_time.count());
}

TEST(PosixHost, StopFreezesConsumption) {
    PosixProcessHost host;
    ChildSet children;
    const pid_t pid = children.add_busy();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    host.stop_pid(pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const core::Sample s1 = host.read_pid(pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const core::Sample s2 = host.read_pid(pid);
    ASSERT_TRUE(s2.alive);
    // Stopped: no meaningful progress (allow scheduler-tick slop).
    EXPECT_LT((s2.cpu_time - s1.cpu_time).count(), msec(20).count());
    host.cont_pid(pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const core::Sample s3 = host.read_pid(pid);
    EXPECT_GT((s3.cpu_time - s2.cpu_time).count(), msec(20).count());
}

TEST(PosixHost, PidsOfUserIncludesSelf) {
    PosixProcessHost host;
    const auto pids = host.pids_of_user(static_cast<core::HostUid>(::getuid()));
    const auto me = static_cast<core::HostPid>(::getpid());
    EXPECT_NE(std::find(pids.begin(), pids.end(), me), pids.end());
}

// ----------------------------------------------------------------------------
// End-to-end on the real OS

TEST(PosixRunner, EnforcesProportionsOnRealChildren) {
    // Pin everything to one CPU so two busy loops actually contend, as on
    // the paper's uniprocessor host.
    ChildSet children;
    const pid_t a = children.add_busy();
    const pid_t b = children.add_busy();
    pin_to_cpu(a, 0);
    pin_to_cpu(b, 0);

    core::SchedulerConfig cfg;
    cfg.quantum = msec(10);
    PosixAlpsRunner runner(cfg);
    PosixProcessHost host;
    const auto cpu0_a = host.read_pid(a).cpu_time;
    const auto cpu0_b = host.read_pid(b).cpu_time;
    runner.scheduler().add(a, 1);
    runner.scheduler().add(b, 3);

    const RunTotals totals = runner.run_for(sec(3));
    EXPECT_GT(totals.ticks, 100u);

    const double da = util::to_sec(host.read_pid(a).cpu_time - cpu0_a);
    const double db = util::to_sec(host.read_pid(b).cpu_time - cpu0_b);
    ASSERT_GT(da + db, 1.0);  // they did run
    // 1:3 within generous tolerance (shared CI host).
    EXPECT_NEAR(db / (da + db), 0.75, 0.12);
    // Neither child may be left SIGSTOPped after release_all().
    EXPECT_FALSE(host.read_pid(a).blocked);
}

TEST(PosixRunner, OverheadIsSmall) {
    ChildSet children;
    const pid_t a = children.add_busy();
    pin_to_cpu(a, 0);
    core::SchedulerConfig cfg;
    cfg.quantum = msec(20);
    PosixAlpsRunner runner(cfg);
    runner.scheduler().add(a, 1);
    const RunTotals totals = runner.run_for(sec(2));
    // The paper's bound: well under 1% of CPU for small workloads.
    EXPECT_LT(totals.overhead_fraction, 0.02);
}

TEST(PosixRunner, StopRequestEndsRunEarly) {
    PosixAlpsRunner runner{core::SchedulerConfig{}};
    std::thread stopper([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        runner.request_stop();
    });
    const auto t0 = monotonic_now();
    runner.run_for(sec(30));
    stopper.join();
    EXPECT_LT((monotonic_now() - t0).count(), sec(5).count());
}

TEST(PosixGroupRunner, EnforcesSharesAcrossGroups) {
    // Two explicit-membership principals (group mode does not require extra
    // user accounts): {a} with 1 share vs {b, c} with 3 shares. The pair's
    // *combined* consumption must approach 75%.
    ChildSet children;
    const pid_t a = children.add_busy();
    const pid_t b = children.add_busy();
    const pid_t c = children.add_busy();
    for (const pid_t p : {a, b, c}) pin_to_cpu(p, 0);

    core::SchedulerConfig cfg;
    cfg.quantum = msec(20);
    PosixGroupAlpsRunner runner(cfg);
    const core::EntityId g1 = runner.manage_group("solo", 1);
    const core::EntityId g2 = runner.manage_group("pair", 3);
    runner.groups().add_member(g1, a);
    runner.groups().add_member(g2, b);
    runner.groups().add_member(g2, c);

    PosixProcessHost host;
    const auto a0 = host.read_pid(a).cpu_time;
    const auto b0 = host.read_pid(b).cpu_time;
    const auto c0 = host.read_pid(c).cpu_time;
    runner.run_for(sec(3));

    const double da = util::to_sec(host.read_pid(a).cpu_time - a0);
    const double dbc = util::to_sec(host.read_pid(b).cpu_time - b0) +
                       util::to_sec(host.read_pid(c).cpu_time - c0);
    ASSERT_GT(da + dbc, 1.0);
    EXPECT_NEAR(dbc / (da + dbc), 0.75, 0.12);
}

TEST(GroupControlOnPosix, TracksRealChildrenOfUser) {
    // Group principal over this uid: membership must include our children.
    PosixProcessHost host;
    core::GroupProcessControl groups(host);
    ChildSet children;
    const pid_t a = children.add_busy();
    const pid_t b = children.add_busy();
    const core::EntityId g = groups.add_principal("me");
    groups.add_member(g, a);
    groups.add_member(g, b);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const core::Sample s = groups.read_progress(g);
    EXPECT_GT(s.cpu_time.count(), 0);
    groups.suspend(g);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto frozen = groups.read_progress(g).cpu_time;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    EXPECT_LT((groups.read_progress(g).cpu_time - frozen).count(), msec(30).count());
    groups.resume(g);
}

}  // namespace
}  // namespace alps::posix
