// cgroup-v1 cpu.shares wrapper tests. Skipped wholesale where the cpu
// controller is not writable (non-root, cgroup v2-only hosts).
#include "posix/cgroup.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <thread>

#include "posix/host.h"
#include "posix/spawn.h"
#include "util/assert.h"
#include "util/time.h"

namespace alps::posix {
namespace {

#define SKIP_WITHOUT_CGROUPS()                                       \
    if (!CpuCgroup::available()) {                                   \
        GTEST_SKIP() << "cgroup v1 cpu controller not writable here"; \
    }

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::string s;
    std::getline(in, s);
    return s;
}

TEST(CpuCgroup, CreateSetsSharesAndDestroysCleanly) {
    SKIP_WITHOUT_CGROUPS();
    std::string path;
    {
        CpuCgroup cg("alps-ut-basic", 2048);
        path = cg.path();
        EXPECT_EQ(read_file(path + "/cpu.shares"), "2048");
        EXPECT_TRUE(cg.set_shares(512));
        EXPECT_EQ(read_file(path + "/cpu.shares"), "512");
    }
    // Gone after destruction.
    std::ifstream gone(path + "/cpu.shares");
    EXPECT_FALSE(gone.good());
}

TEST(CpuCgroup, AttachMovesProcessAndDtorEvacuates) {
    SKIP_WITHOUT_CGROUPS();
    ChildSet children;
    const pid_t pid = children.add_busy();
    {
        CpuCgroup cg("alps-ut-attach", 1024);
        ASSERT_TRUE(cg.attach(pid));
        // The child's tasks file lists it.
        std::ifstream tasks(cg.path() + "/tasks");
        bool found = false;
        std::string line;
        while (std::getline(tasks, line)) {
            if (line == std::to_string(pid)) found = true;
        }
        EXPECT_TRUE(found);
    }
    // After destruction the child still runs (evacuated, not killed).
    PosixProcessHost host;
    const auto t0 = host.read_pid(pid).cpu_time;
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    EXPECT_GT(host.read_pid(pid).cpu_time.count(), t0.count());
}

TEST(CpuCgroup, SharesActuallyShapeCpu) {
    SKIP_WITHOUT_CGROUPS();
    ChildSet children;
    const pid_t a = children.add_busy();
    const pid_t b = children.add_busy();
    pin_to_cpu(a, 0);
    pin_to_cpu(b, 0);
    CpuCgroup small("alps-ut-small", 1024);
    CpuCgroup big("alps-ut-big", 3072);
    ASSERT_TRUE(small.attach(a));
    ASSERT_TRUE(big.attach(b));

    PosixProcessHost host;
    const auto a0 = host.read_pid(a).cpu_time;
    const auto b0 = host.read_pid(b).cpu_time;
    std::this_thread::sleep_for(std::chrono::seconds(2));
    const double da = util::to_sec(host.read_pid(a).cpu_time - a0);
    const double db = util::to_sec(host.read_pid(b).cpu_time - b0);
    ASSERT_GT(da + db, 1.0);
    EXPECT_NEAR(db / (da + db), 0.75, 0.1);
}

TEST(CpuCgroup, ContractViolations) {
    SKIP_WITHOUT_CGROUPS();
    EXPECT_THROW(CpuCgroup("", 1024), util::ContractViolation);
    EXPECT_THROW(CpuCgroup("a/b", 1024), util::ContractViolation);
    EXPECT_THROW(CpuCgroup("ok", 1), util::ContractViolation);  // below kernel min
}

}  // namespace
}  // namespace alps::posix
