#include "posix/cli.h"

#include <gtest/gtest.h>

namespace alps::posix::cli {
namespace {

using util::msec;
using util::sec;

std::optional<core::HostUid> fake_lookup(const std::string& name) {
    if (name == "alice") return 1001;
    if (name == "bob") return 1002;
    return std::nullopt;
}

std::optional<Options> parse(std::initializer_list<const char*> args) {
    std::vector<const char*> argv{"alpsctl"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parse_args(static_cast<int>(argv.size()), argv.data(), fake_lookup);
}

TEST(CliAssignment, ParsesNameEqualsShare) {
    const auto a = parse_assignment("1234=3");
    ASSERT_TRUE(a);
    EXPECT_EQ(a->first, "1234");
    EXPECT_EQ(a->second, 3);
}

TEST(CliAssignment, RejectsMalformed) {
    EXPECT_FALSE(parse_assignment("1234"));
    EXPECT_FALSE(parse_assignment("=3"));
    EXPECT_FALSE(parse_assignment("x="));
    EXPECT_FALSE(parse_assignment("x=0"));
    EXPECT_FALSE(parse_assignment("x=-1"));
    EXPECT_FALSE(parse_assignment("x=abc"));
}

TEST(CliDuration, ParsesUnits) {
    EXPECT_EQ(parse_duration("10", msec(1)), msec(10));
    EXPECT_EQ(parse_duration("10ms", sec(1)), msec(10));  // suffix wins
    EXPECT_EQ(parse_duration("5s", msec(1)), sec(5));
    EXPECT_EQ(parse_duration("30", sec(1)), sec(30));
    EXPECT_FALSE(parse_duration("0", sec(1)));
    EXPECT_FALSE(parse_duration("-3", sec(1)));
    EXPECT_FALSE(parse_duration("abc", sec(1)));
    EXPECT_FALSE(parse_duration("", sec(1)));
}

TEST(CliUser, ResolvesNumericAndNamed) {
    EXPECT_EQ(resolve_user("1001", fake_lookup), 1001);
    EXPECT_EQ(resolve_user("alice", fake_lookup), 1001);
    EXPECT_EQ(resolve_user("bob", fake_lookup), 1002);
    EXPECT_FALSE(resolve_user("mallory", fake_lookup));
    EXPECT_FALSE(resolve_user("-5", fake_lookup));
}

TEST(CliArgs, PidMode) {
    const auto opt = parse({"--duration", "30", "--quantum", "20ms", "111=1", "222=3"});
    ASSERT_TRUE(opt);
    EXPECT_EQ(opt->duration, sec(30));
    EXPECT_EQ(opt->quantum, msec(20));
    EXPECT_TRUE(opt->lazy);
    ASSERT_EQ(opt->pid_targets.size(), 2u);
    EXPECT_EQ(opt->pid_targets[0].pid, 111);
    EXPECT_EQ(opt->pid_targets[0].share, 1);
    EXPECT_EQ(opt->pid_targets[1].pid, 222);
    EXPECT_EQ(opt->pid_targets[1].share, 3);
    EXPECT_TRUE(opt->user_targets.empty());
}

TEST(CliArgs, UserMode) {
    const auto opt = parse({"--user", "alice=1", "--user", "bob=3", "--quiet"});
    ASSERT_TRUE(opt);
    EXPECT_TRUE(opt->quiet);
    ASSERT_EQ(opt->user_targets.size(), 2u);
    EXPECT_EQ(opt->user_targets[0].uid, 1001);
    EXPECT_EQ(opt->user_targets[1].uid, 1002);
    EXPECT_EQ(opt->user_targets[1].share, 3);
}

TEST(CliArgs, EagerFlag) {
    const auto opt = parse({"--eager", "1=1"});
    ASSERT_TRUE(opt);
    EXPECT_FALSE(opt->lazy);
}

TEST(CliArgs, DefaultsApply) {
    const auto opt = parse({"42=7"});
    ASSERT_TRUE(opt);
    EXPECT_EQ(opt->quantum, msec(10));
    EXPECT_EQ(opt->duration, sec(10));
    EXPECT_TRUE(opt->lazy);
    EXPECT_FALSE(opt->quiet);
}

TEST(CliArgs, RejectsEmptyAndMixedAndUnknown) {
    EXPECT_FALSE(parse({}));
    EXPECT_FALSE(parse({"--user", "alice=1", "42=1"}));  // mixed modes
    EXPECT_FALSE(parse({"--user", "mallory=1"}));        // unknown user
    EXPECT_FALSE(parse({"--quantum"}));                  // missing value
    EXPECT_FALSE(parse({"--duration", "x"}));
    EXPECT_FALSE(parse({"0=1"}));    // pid must be positive
    EXPECT_FALSE(parse({"-9=1"}));   // not an option, not a valid pid
}

}  // namespace
}  // namespace alps::posix::cli
