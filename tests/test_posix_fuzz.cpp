// Robustness sweeps for the /proc parsers: random and adversarial inputs
// must never crash, hang, or return nonsense-accepted results.
#include <gtest/gtest.h>

#include <string>

#include "posix/proc_stat.h"
#include "util/rng.h"

namespace alps::posix {
namespace {

class ProcStatFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProcStatFuzzTest, RandomBytesNeverCrash) {
    util::Rng rng(GetParam());
    for (int iter = 0; iter < 2000; ++iter) {
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 300));
        std::string input;
        input.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            // Printable-ish byte soup with the structural characters
            // over-represented so parser branches actually get hit.
            const auto roll = rng.uniform_int(0, 9);
            if (roll < 2) {
                input.push_back(' ');
            } else if (roll == 2) {
                input.push_back('(');
            } else if (roll == 3) {
                input.push_back(')');
            } else if (roll < 7) {
                input.push_back(static_cast<char>('0' + rng.uniform_int(0, 9)));
            } else {
                input.push_back(static_cast<char>(rng.uniform_int(32, 126)));
            }
        }
        const auto st = parse_proc_stat(input);
        if (st.has_value()) {
            // Anything accepted must be structurally sane.
            EXPECT_FALSE(st->comm.find('\0') != std::string::npos);
        }
        (void)parse_schedstat(input);
    }
}

TEST_P(ProcStatFuzzTest, MutatedValidLinesStaySane) {
    util::Rng rng(GetParam() ^ 0x5eed);
    const std::string valid =
        "1234 (myproc) R 1 1234 1234 0 -1 4194304 100 0 0 0 250 50 0 0 20 0 1 0 "
        "12345 1000000 100 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0";
    for (int iter = 0; iter < 2000; ++iter) {
        std::string input = valid;
        const int mutations = static_cast<int>(rng.uniform_int(1, 8));
        for (int m = 0; m < mutations; ++m) {
            const auto pos = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(input.size()) - 1));
            switch (rng.uniform_int(0, 2)) {
                case 0:
                    input[pos] = static_cast<char>(rng.uniform_int(32, 126));
                    break;
                case 1:
                    input.erase(pos, 1);
                    break;
                default:
                    input.insert(pos, 1,
                                 static_cast<char>(rng.uniform_int(32, 126)));
                    break;
            }
            if (input.empty()) break;
        }
        const auto st = parse_proc_stat(input);
        if (st.has_value()) {
            EXPECT_EQ(st->comm.find('\n'), std::string::npos);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcStatFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace alps::posix
