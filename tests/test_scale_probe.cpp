// Scale probe: a sharded machine carrying a very large process population.
//
// Eight uniprocessor kernels, one per shard, split ALPS_SCALE_PROCS
// compute-bound processes evenly and run 100 ms of simulated time in
// conservative lockstep. The default population (64k) keeps ctest fast; the
// EXPERIMENTS.md million-process row is this same test re-run with
// ALPS_SCALE_PROCS=1000000. What the probe guards:
//   * spawn stays linear (SoA proc table + arena slabs — no quadratic
//     surprise hiding behind a big population),
//   * the lockstep protocol's per-epoch cost is independent of the proc
//     count (only runnable-queue churn and housekeeping touch the
//     population), and
//   * accounting stays exact: total consumed CPU == shards x simulated wall
//     (every domain is saturated, so capacity accounting has no slack).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/shard.h"
#include "util/time.h"

namespace alps {
namespace {

TEST(ShardedScale, LargeProcPopulationAcrossShards) {
    std::uint64_t total_procs = 65'536;
    if (const char* env = std::getenv("ALPS_SCALE_PROCS")) {
        total_procs = std::strtoull(env, nullptr, 10);
        ASSERT_GT(total_procs, 0u);
    }
    constexpr unsigned kShards = 8;
    const util::Duration sim_span = util::msec(100);

    sim::ShardedEngine::Config cfg;
    cfg.shards = kShards;
    cfg.epoch = util::msec(10);
    sim::ShardedEngine sharded(cfg);

    std::vector<std::unique_ptr<os::Kernel>> kernels;
    kernels.reserve(kShards);
    std::vector<std::vector<os::Pid>> pids(kShards);
    for (unsigned s = 0; s < kShards; ++s) {
        kernels.push_back(std::make_unique<os::Kernel>(
            sharded.engine(s), nullptr, os::KernelConfig{.ncpus = 1}));
        const std::uint64_t n =
            total_procs / kShards + (s < total_procs % kShards ? 1 : 0);
        pids[s].reserve(n);
        // One shared name: at a million processes the per-proc string is the
        // dominant spawn cost, and nothing in the probe reads names back.
        for (std::uint64_t i = 0; i < n; ++i) {
            pids[s].push_back(kernels[s]->spawn(
                "w", /*uid=*/100, std::make_unique<os::CpuBoundBehavior>()));
        }
    }

    sharded.run_lockstep(sim::TimePoint{} + sim_span,
                         sim::ShardedEngine::RunMode::kSerial);

    // Every uniprocessor domain is saturated with compute-bound work, so the
    // population's total CPU must equal the machine's exact capacity.
    util::Duration consumed{0};
    std::uint64_t alive = 0;
    std::vector<os::Kernel::SampleView> views;
    for (unsigned s = 0; s < kShards; ++s) {
        views.resize(pids[s].size());
        kernels[s]->measure(pids[s], views.data());
        for (const auto& v : views) {
            consumed += v.cpu_time;
            alive += v.alive ? 1 : 0;
        }
    }
    EXPECT_EQ(alive, total_procs);
    EXPECT_EQ(consumed, sim_span * static_cast<std::int64_t>(kShards));
    EXPECT_EQ(sharded.stats().epochs, 10u);
    EXPECT_GT(sharded.total_events_fired(), 0u);
}

}  // namespace
}  // namespace alps
