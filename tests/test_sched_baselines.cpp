// In-kernel proportional-share baselines (stride, lottery) driven through
// the same simulated machine — the comparison class the paper's related-work
// section positions ALPS against.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sched/lottery_policy.h"
#include "sched/stride_policy.h"
#include "sim/engine.h"

namespace alps::sched {
namespace {

using util::msec;
using util::sec;
using util::to_sec;

template <typename Policy>
struct Machine {
    sim::Engine engine;
    Policy* policy;  // owned by the kernel
    std::unique_ptr<os::Kernel> kernel;

    Machine() {
        auto p = std::make_unique<Policy>(msec(10));
        policy = p.get();
        kernel = std::make_unique<os::Kernel>(engine, std::move(p));
    }

    os::Pid hog(std::int64_t tickets) {
        const os::Pid pid =
            kernel->spawn("hog", 0, std::make_unique<os::CpuBoundBehavior>());
        policy->set_tickets(pid, tickets);
        return pid;
    }
    void run_for(util::Duration d) { engine.run_until(engine.now() + d); }
};

TEST(StridePolicy, ProportionalForUnequalTickets) {
    Machine<StridePolicy> m;
    const os::Pid a = m.hog(1);
    const os::Pid b = m.hog(2);
    const os::Pid c = m.hog(3);
    m.run_for(sec(12));
    const double total = 12.0;
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(a)) / total, 1.0 / 6.0, 0.01);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(b)) / total, 2.0 / 6.0, 0.01);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(c)) / total, 3.0 / 6.0, 0.01);
}

TEST(StridePolicy, DeterministicAndExactOverShortWindows) {
    Machine<StridePolicy> m;
    const os::Pid a = m.hog(1);
    const os::Pid b = m.hog(1);
    m.run_for(sec(1));
    // Equal tickets: within one quantum of each other at any instant.
    const auto diff = (m.kernel->cpu_time(a) - m.kernel->cpu_time(b)).count();
    EXPECT_LE(std::abs(diff), msec(10).count());
}

TEST(StridePolicy, LateArrivalJoinsAtCurrentVirtualTime) {
    Machine<StridePolicy> m;
    const os::Pid a = m.hog(1);
    m.run_for(sec(5));
    const os::Pid b = m.hog(1);
    m.run_for(sec(4));
    // b must not catch up on the 5 s it missed: it gets ~half of the last 4 s.
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(b)), 2.0, 0.1);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(a)), 7.0, 0.1);
}

TEST(StridePolicy, SkewedTicketsStayProportional) {
    Machine<StridePolicy> m;
    std::vector<os::Pid> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(m.hog(1));
    const os::Pid big = m.hog(21);
    m.run_for(sec(25));
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(big)) / 25.0, 21.0 / 25.0, 0.01);
    for (const os::Pid p : pids) {
        EXPECT_NEAR(to_sec(m.kernel->cpu_time(p)) / 25.0, 1.0 / 25.0, 0.005);
    }
}

TEST(StridePolicy, SleeperGetsNoBankedCredit) {
    Machine<StridePolicy> m;
    const os::Pid hog = m.hog(1);
    const os::Pid io = m.kernel->spawn(
        "io", 0, std::make_unique<os::PhasedIoBehavior>(msec(10), msec(190)));
    m.policy->set_tickets(io, 1);
    m.run_for(sec(10));
    // The sleeper demands only 5% of the CPU; the hog gets the rest (not 50%).
    EXPECT_GT(to_sec(m.kernel->cpu_time(hog)), 9.0);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(io)), 0.5, 0.1);
}

TEST(LotteryPolicy, ProportionalInExpectation) {
    Machine<LotteryPolicy> m;
    const os::Pid a = m.hog(1);
    const os::Pid b = m.hog(3);
    m.run_for(sec(40));  // 4000 drawings
    const double fa = to_sec(m.kernel->cpu_time(a)) / 40.0;
    EXPECT_NEAR(fa, 0.25, 0.03);  // statistical: ~sqrt(p q / n) noise
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(b)) / 40.0, 0.75, 0.03);
}

TEST(LotteryPolicy, SeededRunsAreReproducible) {
    auto run = [] {
        Machine<LotteryPolicy> m;
        const os::Pid a = m.hog(1);
        m.hog(2);
        m.run_for(sec(3));
        return m.kernel->cpu_time(a);
    };
    EXPECT_EQ(run(), run());
}

TEST(LotteryPolicy, HigherVarianceThanStride) {
    // Compare per-second allocation variance for a 1:1 pair.
    auto variance_of = [](auto make_machine) {
        auto m = make_machine();
        const os::Pid a = m->hog(1);
        m->hog(1);
        double sum_sq = 0.0;
        util::Duration prev{0};
        for (int s = 0; s < 30; ++s) {
            m->run_for(sec(1));
            const auto now_cpu = m->kernel->cpu_time(a);
            const double frac = to_sec(now_cpu - prev);
            prev = now_cpu;
            sum_sq += (frac - 0.5) * (frac - 0.5);
        }
        return sum_sq / 30.0;
    };
    const double v_lottery = variance_of(
        [] { return std::make_unique<Machine<LotteryPolicy>>(); });
    const double v_stride = variance_of(
        [] { return std::make_unique<Machine<StridePolicy>>(); });
    EXPECT_GT(v_lottery, v_stride);
}

TEST(StridePolicy, TicketContracts) {
    Machine<StridePolicy> m;
    const os::Pid a = m.hog(1);
    EXPECT_THROW(m.policy->set_tickets(a, 0), util::ContractViolation);
    EXPECT_THROW(m.policy->set_tickets(a, -5), util::ContractViolation);
}

}  // namespace
}  // namespace alps::sched
