#include "sched/wrr_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"

namespace alps::sched {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::to_sec;

struct Machine {
    sim::Engine engine;
    WrrPolicy* policy;
    std::unique_ptr<os::Kernel> kernel;

    Machine() {
        auto p = std::make_unique<WrrPolicy>(msec(10));
        policy = p.get();
        kernel = std::make_unique<os::Kernel>(engine, std::move(p));
    }
    os::Pid hog(std::int64_t tickets) {
        const os::Pid pid =
            kernel->spawn("hog", 0, std::make_unique<os::CpuBoundBehavior>());
        policy->set_tickets(pid, tickets);
        return pid;
    }
    void run_for(Duration d) { engine.run_until(engine.now() + d); }
};

TEST(WrrPolicy, ProportionalOverRotations) {
    Machine m;
    const os::Pid a = m.hog(1);
    const os::Pid b = m.hog(2);
    const os::Pid c = m.hog(3);
    m.run_for(sec(12));
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(a)) / 12.0, 1.0 / 6.0, 0.01);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(b)) / 12.0, 2.0 / 6.0, 0.01);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(c)) / 12.0, 3.0 / 6.0, 0.01);
}

TEST(WrrPolicy, TurnsAreConsecutive) {
    // The defining (and damning) property: a client's quanta come in one
    // contiguous burst per rotation.
    Machine m;
    m.hog(1);
    const os::Pid big = m.hog(10);
    m.run_for(msec(220));  // two rotations of 11 quanta
    // During the big client's 100 ms turn there are no context switches, so
    // the total switch count stays ~2 per rotation (plus startup).
    EXPECT_LE(m.kernel->context_switches(), 8u);
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(big)), 0.2, 0.03);
}

TEST(WrrPolicy, BurstierThanDeservedOnShortHorizons) {
    // Over half a rotation, the big client can be 100% ahead of its share —
    // the short-horizon unfairness stride avoids.
    Machine m;
    const os::Pid small = m.hog(1);
    m.hog(9);
    m.run_for(msec(45));  // inside the big client's first turn
    // Depending on rotation order the small one may not have run at all.
    EXPECT_LE(to_sec(m.kernel->cpu_time(small)), 0.011);
}

TEST(WrrPolicy, SleeperRejoinsRotation) {
    Machine m;
    const os::Pid hog = m.hog(1);
    const os::Pid io = m.kernel->spawn(
        "io", 0, std::make_unique<os::PhasedIoBehavior>(msec(10), msec(190)));
    m.policy->set_tickets(io, 1);
    m.run_for(sec(10));
    // io demands 5%; WRR must not starve it or give it catch-up bursts.
    EXPECT_NEAR(to_sec(m.kernel->cpu_time(io)), 0.5, 0.1);
    EXPECT_GT(to_sec(m.kernel->cpu_time(hog)), 9.0);
}

TEST(WrrPolicy, ClientRemovalKeepsRotationSound) {
    Machine m;
    const os::Pid a = m.hog(1);
    const os::Pid b = m.hog(1);
    const os::Pid c = m.hog(1);
    m.run_for(sec(1));
    m.kernel->send_signal(b, os::Signal::kKill);
    m.run_for(sec(2));
    const double da = to_sec(m.kernel->cpu_time(a));
    const double dc = to_sec(m.kernel->cpu_time(c));
    EXPECT_NEAR(da + dc + to_sec(m.kernel->cpu_time(b)), 3.0, 1e-6);
    EXPECT_NEAR(da, dc, 0.1);
}

TEST(WrrPolicy, SoleClientRunsForever) {
    Machine m;
    const os::Pid a = m.hog(3);
    m.run_for(sec(2));
    EXPECT_EQ(m.kernel->cpu_time(a), sec(2));
}

TEST(WrrPolicy, TicketContracts) {
    Machine m;
    const os::Pid a = m.hog(1);
    EXPECT_THROW(m.policy->set_tickets(a, 0), util::ContractViolation);
}

}  // namespace
}  // namespace alps::sched
