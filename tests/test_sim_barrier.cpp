// EpochBarrier in isolation: single-party degenerate case, serial-thread
// election, reuse across many generations, and the happens-before edge that
// the sharded engine's cross-shard reads depend on (data handoff through the
// barrier with plain non-atomic loads — the TSan leg verifies the edge).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/barrier.h"

namespace alps::sim {
namespace {

TEST(EpochBarrier, SinglePartyNeverBlocks) {
    EpochBarrier barrier(1);
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(barrier.arrive_and_wait());
    EXPECT_EQ(barrier.generation(), 100u);
}

TEST(EpochBarrier, ElectsExactlyOneSerialThreadPerGeneration) {
    constexpr unsigned kParties = 4;
    constexpr int kEpochs = 200;
    EpochBarrier barrier(kParties);
    std::atomic<int> serial_count{0};
    std::vector<std::thread> threads;
    threads.reserve(kParties);
    for (unsigned p = 0; p < kParties; ++p) {
        threads.emplace_back([&] {
            for (int e = 0; e < kEpochs; ++e) {
                if (barrier.arrive_and_wait()) {
                    serial_count.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(serial_count.load(), kEpochs);
    EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kEpochs));
}

// The property the sharded engine stakes its correctness on: writes made
// before arriving are visible to every party after release, using plain
// loads/stores on non-atomic memory. Each party bumps its own slot before
// the barrier and sums everyone's slots after; any missing edge is a torn
// sum (and a TSan report on the sanitizer leg).
TEST(EpochBarrier, PublishesPreBarrierWritesToAllParties) {
    constexpr unsigned kParties = 4;
    constexpr int kEpochs = 500;
    EpochBarrier barrier_a(kParties);
    EpochBarrier barrier_b(kParties);
    // Deliberately unpadded and non-atomic.
    std::uint64_t slots[kParties] = {};
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    threads.reserve(kParties);
    for (unsigned p = 0; p < kParties; ++p) {
        threads.emplace_back([&, p] {
            for (int e = 1; e <= kEpochs; ++e) {
                slots[p] = static_cast<std::uint64_t>(e);
                barrier_a.arrive_and_wait();
                std::uint64_t sum = 0;
                for (unsigned q = 0; q < kParties; ++q) sum += slots[q];
                if (sum != static_cast<std::uint64_t>(e) * kParties) {
                    failures.fetch_add(1, std::memory_order_relaxed);
                }
                // Second barrier keeps epoch e+1 writers from racing the
                // readers — exactly the sharded engine's barrier B.
                barrier_b.arrive_and_wait();
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(EpochBarrier, OversubscribedPartiesMakeProgress) {
    // More parties than this host may have cores: the park-after-spin path
    // must still complete promptly.
    constexpr unsigned kParties = 16;
    EpochBarrier barrier(kParties);
    std::vector<std::thread> threads;
    threads.reserve(kParties);
    for (unsigned p = 0; p < kParties; ++p) {
        threads.emplace_back([&] {
            for (int e = 0; e < 50; ++e) barrier.arrive_and_wait();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(barrier.generation(), 50u);
}

}  // namespace
}  // namespace alps::sim
