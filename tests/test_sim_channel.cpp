// SPSC ring / ShardChannel in isolation: wraparound, backpressure (overflow
// slow path with FIFO preservation), and lock-free churn across a real
// producer/consumer thread pair (the TSan leg of scripts/check.sh runs this
// file under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sim/spsc.h"

namespace alps::sim {
namespace {

TEST(SpscRing, FifoWithinCapacity) {
    SpscRing<int> ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 8; ++i) {
        int v = i;
        EXPECT_TRUE(ring.try_push(v));
    }
    int rejected = 99;
    EXPECT_FALSE(ring.try_push(rejected));  // full
    EXPECT_EQ(rejected, 99);                // not consumed
    for (int i = 0; i < 8; ++i) {
        int out = -1;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, i);
    }
    int out = -1;
    EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
    SpscRing<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
    SpscRing<int> one(1);
    EXPECT_EQ(one.capacity(), 1u);
}

// The head/tail indices are free-running 64-bit counters masked on access;
// drive many fill/drain rounds through a tiny ring so the masked index wraps
// the buffer hundreds of times and ordering still holds.
TEST(SpscRing, WraparoundKeepsFifoOrder) {
    SpscRing<std::uint64_t> ring(4);
    std::uint64_t next_push = 0;
    std::uint64_t next_pop = 0;
    for (int round = 0; round < 500; ++round) {
        const int burst = 1 + (round % 4);
        for (int i = 0; i < burst; ++i) {
            std::uint64_t v = next_push;
            ASSERT_TRUE(ring.try_push(v));
            ++next_push;
        }
        for (int i = 0; i < burst; ++i) {
            std::uint64_t out = 0;
            ASSERT_TRUE(ring.try_pop(out));
            ASSERT_EQ(out, next_pop);
            ++next_pop;
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, MovesValuesThrough) {
    SpscRing<std::string> ring(2);
    std::string in = "payload-that-defeats-sso-0123456789";
    const char* data = in.data();
    ASSERT_TRUE(ring.try_push(in));
    std::string out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.data(), data);  // same heap buffer: moved, not copied
}

TEST(ShardChannel, FastPathOnly) {
    ShardChannel<int> ch(16);
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(ch.push(i));
    EXPECT_EQ(ch.overflow_count(), 0u);
    std::vector<int> got;
    EXPECT_EQ(ch.drain_all([&](int v) { got.push_back(v); }), 10u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

// Backpressure: pushing past the ring diverts to the overflow list, and —
// critically — *stays* diverted until the producer re-arms, so a later
// message can never overtake an overflowed one.
TEST(ShardChannel, OverflowPreservesGlobalFifo) {
    ShardChannel<int> ch(4);
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.push(i));   // ring now full
    EXPECT_FALSE(ch.push(4));                              // overflow begins
    // Even though popping would free ring space, the producer must keep
    // overflowing within this phase:
    EXPECT_FALSE(ch.push(5));
    EXPECT_EQ(ch.overflow_count(), 2u);

    std::vector<int> got;
    EXPECT_EQ(ch.drain_all([&](int v) { got.push_back(v); }), 6u);
    ASSERT_EQ(got.size(), 6u);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);

    // Next phase: the fast path is re-armed.
    ch.reset_overflow_phase();
    EXPECT_TRUE(ch.push(100));
    EXPECT_EQ(ch.overflow_count(), 2u);  // lifetime count unchanged
    got.clear();
    ch.drain_all([&](int v) { got.push_back(v); });
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 100);
}

TEST(ShardChannel, DrainOnEmptyIsZero) {
    ShardChannel<int> ch(4);
    EXPECT_EQ(ch.drain_all([](int) {}), 0u);
}

// Concurrent churn: one producer thread, one consumer thread, values must
// arrive exactly once, in order, with no loss — across both the lock-free
// ring and the overflow slow path (the tiny ring forces overflow traffic).
// TSan-relevant: this is the exact thread shape the sharded engine wires up.
TEST(ShardChannel, ConcurrentChurnLosslessAndOrdered) {
    constexpr std::uint64_t kCount = 200'000;
    ShardChannel<std::uint64_t> ch(64);
    std::atomic<bool> done{false};

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount; ++i) {
            ch.push(i);
            // Periodically simulate an epoch boundary from the producer
            // side. Note: unlike the lockstep protocol, there is no
            // guarantee the consumer drained — re-arming here merely races
            // fast/slow path selection, which must still preserve per-path
            // FIFO and lose nothing. Total order is checked in the
            // single-threaded tests above where the protocol's drained
            // guarantee holds.
            if ((i & 0x3ff) == 0) ch.reset_overflow_phase();
        }
        done.store(true, std::memory_order_release);
    });

    std::vector<std::uint64_t> got;
    got.reserve(kCount);
    while (!done.load(std::memory_order_acquire) || got.size() < kCount) {
        ch.drain_all([&](std::uint64_t v) { got.push_back(v); });
        if (got.size() >= kCount) break;
        std::this_thread::yield();
    }
    producer.join();
    ch.drain_all([&](std::uint64_t v) { got.push_back(v); });

    ASSERT_EQ(got.size(), kCount);
    std::vector<bool> seen(kCount, false);
    for (const std::uint64_t v : got) {
        ASSERT_LT(v, kCount);
        ASSERT_FALSE(seen[v]) << "duplicate " << v;
        seen[v] = true;
    }
}

}  // namespace
}  // namespace alps::sim
