#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace alps::sim {
namespace {

using util::msec;
using util::TimePoint;

TEST(Engine, StartsAtZero) {
    Engine e;
    EXPECT_EQ(e.now(), TimePoint{});
    EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
    Engine e;
    std::vector<int> order;
    e.schedule_at(TimePoint{} + msec(30), [&] { order.push_back(3); });
    e.schedule_at(TimePoint{} + msec(10), [&] { order.push_back(1); });
    e.schedule_at(TimePoint{} + msec(20), [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), TimePoint{} + msec(30));
}

TEST(Engine, FifoAmongEqualTimes) {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        e.schedule_at(TimePoint{} + msec(10), [&order, i] { order.push_back(i); });
    }
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterIsRelative) {
    Engine e;
    TimePoint fired{};
    e.schedule_at(TimePoint{} + msec(5), [&] {
        e.schedule_after(msec(7), [&] { fired = e.now(); });
    });
    e.run();
    EXPECT_EQ(fired, TimePoint{} + msec(12));
}

TEST(Engine, CancelPreventsExecution) {
    Engine e;
    bool ran = false;
    const EventId id = e.schedule_at(TimePoint{} + msec(10), [&] { ran = true; });
    EXPECT_TRUE(e.pending(id));
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.pending(id));
    e.run();
    EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceReturnsFalse) {
    Engine e;
    const EventId id = e.schedule_at(TimePoint{} + msec(1), [] {});
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
    Engine e;
    const EventId id = e.schedule_at(TimePoint{} + msec(1), [] {});
    e.run();
    EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilAdvancesClockToExactly) {
    Engine e;
    int fired = 0;
    e.schedule_at(TimePoint{} + msec(10), [&] { ++fired; });
    e.schedule_at(TimePoint{} + msec(30), [&] { ++fired; });
    e.run_until(TimePoint{} + msec(20));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.now(), TimePoint{} + msec(20));
    e.run_until(TimePoint{} + msec(40));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.now(), TimePoint{} + msec(40));
}

TEST(Engine, RunUntilInclusiveOfBoundaryEvents) {
    Engine e;
    bool ran = false;
    e.schedule_at(TimePoint{} + msec(10), [&] { ran = true; });
    e.run_until(TimePoint{} + msec(10));
    EXPECT_TRUE(ran);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
    Engine e;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5) e.schedule_after(msec(1), chain);
    };
    e.schedule_after(msec(1), chain);
    e.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(e.now(), TimePoint{} + msec(5));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
    Engine e;
    EXPECT_FALSE(e.step());
}

TEST(Engine, SchedulingInPastViolatesContract) {
    Engine e;
    e.schedule_at(TimePoint{} + msec(5), [] {});
    e.run();
    EXPECT_THROW(e.schedule_at(TimePoint{} + msec(1), [] {}), util::ContractViolation);
}

TEST(Engine, NullCallbackViolatesContract) {
    Engine e;
    EXPECT_THROW(e.schedule_at(TimePoint{} + msec(1), nullptr),
                 util::ContractViolation);
}

TEST(Engine, PendingCountTracksLifecycle) {
    Engine e;
    const EventId a = e.schedule_after(msec(1), [] {});
    e.schedule_after(msec(2), [] {});
    EXPECT_EQ(e.pending_count(), 2u);
    e.cancel(a);
    EXPECT_EQ(e.pending_count(), 1u);
    e.run();
    EXPECT_EQ(e.pending_count(), 0u);
}

TEST(Engine, CancelledEventDoesNotBlockQueueProgress) {
    Engine e;
    bool second = false;
    const EventId a = e.schedule_at(TimePoint{} + msec(1), [] {});
    e.schedule_at(TimePoint{} + msec(2), [&] { second = true; });
    e.cancel(a);
    EXPECT_TRUE(e.step());
    EXPECT_TRUE(second);
    EXPECT_EQ(e.now(), TimePoint{} + msec(2));
}

}  // namespace
}  // namespace alps::sim
