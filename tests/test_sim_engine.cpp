#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"

namespace alps::sim {
namespace {

using util::msec;
using util::TimePoint;

TEST(Engine, StartsAtZero) {
    Engine e;
    EXPECT_EQ(e.now(), TimePoint{});
    EXPECT_EQ(e.live_events(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
    Engine e;
    std::vector<int> order;
    e.schedule_at(TimePoint{} + msec(30), [&] { order.push_back(3); });
    e.schedule_at(TimePoint{} + msec(10), [&] { order.push_back(1); });
    e.schedule_at(TimePoint{} + msec(20), [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now(), TimePoint{} + msec(30));
}

TEST(Engine, FifoAmongEqualTimes) {
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        e.schedule_at(TimePoint{} + msec(10), [&order, i] { order.push_back(i); });
    }
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, ScheduleAfterIsRelative) {
    Engine e;
    TimePoint fired{};
    e.schedule_at(TimePoint{} + msec(5), [&] {
        e.schedule_after(msec(7), [&] { fired = e.now(); });
    });
    e.run();
    EXPECT_EQ(fired, TimePoint{} + msec(12));
}

TEST(Engine, CancelPreventsExecution) {
    Engine e;
    bool ran = false;
    const EventId id = e.schedule_at(TimePoint{} + msec(10), [&] { ran = true; });
    EXPECT_TRUE(e.pending(id));
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.pending(id));
    e.run();
    EXPECT_FALSE(ran);
}

TEST(Engine, CancelTwiceReturnsFalse) {
    Engine e;
    const EventId id = e.schedule_at(TimePoint{} + msec(1), [] {});
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
    Engine e;
    const EventId id = e.schedule_at(TimePoint{} + msec(1), [] {});
    e.run();
    EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilAdvancesClockToExactly) {
    Engine e;
    int fired = 0;
    e.schedule_at(TimePoint{} + msec(10), [&] { ++fired; });
    e.schedule_at(TimePoint{} + msec(30), [&] { ++fired; });
    e.run_until(TimePoint{} + msec(20));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.now(), TimePoint{} + msec(20));
    e.run_until(TimePoint{} + msec(40));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(e.now(), TimePoint{} + msec(40));
}

TEST(Engine, RunUntilInclusiveOfBoundaryEvents) {
    Engine e;
    bool ran = false;
    e.schedule_at(TimePoint{} + msec(10), [&] { ran = true; });
    e.run_until(TimePoint{} + msec(10));
    EXPECT_TRUE(ran);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
    Engine e;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5) e.schedule_after(msec(1), chain);
    };
    e.schedule_after(msec(1), chain);
    e.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(e.now(), TimePoint{} + msec(5));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
    Engine e;
    EXPECT_FALSE(e.step());
}

TEST(Engine, SchedulingInPastViolatesContract) {
    Engine e;
    e.schedule_at(TimePoint{} + msec(5), [] {});
    e.run();
    EXPECT_THROW(e.schedule_at(TimePoint{} + msec(1), [] {}), util::ContractViolation);
}

TEST(Engine, NullCallbackViolatesContract) {
    Engine e;
    EXPECT_THROW(e.schedule_at(TimePoint{} + msec(1), nullptr),
                 util::ContractViolation);
}

TEST(Engine, LiveEventsTracksLifecycle) {
    Engine e;
    const EventId a = e.schedule_after(msec(1), [] {});
    e.schedule_after(msec(2), [] {});
    EXPECT_EQ(e.live_events(), 2u);
    e.cancel(a);
    EXPECT_EQ(e.live_events(), 1u);
    e.run();
    EXPECT_EQ(e.live_events(), 0u);
}

TEST(Engine, LiveEventsSplitsWheelAndSpill) {
    // live_events() counts the wheel and the far-future spill list together;
    // spill_live_events() is the spill-only slice and can never exceed it.
    Engine e;
    e.schedule_after(msec(1), [] {});
    e.schedule_after(msec(2), [] {});
    EXPECT_EQ(e.live_events(), 2u);
    EXPECT_LE(e.spill_live_events(), e.live_events());
    e.run();
    EXPECT_EQ(e.live_events(), 0u);
    EXPECT_EQ(e.spill_live_events(), 0u);
}

// --- cancel/pending churn: the FIFO determinism the parallel experiment
// --- harness leans on (each task owns an Engine; results must be a pure
// --- function of the schedule, never of cancellation patterns or timing).

TEST(Engine, CancelSameTimeSiblingFromCallback) {
    // FIFO among equal timestamps means an earlier-scheduled event can cancel
    // a later-scheduled one at the same instant before it fires.
    Engine e;
    bool victim_ran = false;
    EventId victim = 0;
    e.schedule_at(TimePoint{} + msec(10), [&] { EXPECT_TRUE(e.cancel(victim)); });
    victim = e.schedule_at(TimePoint{} + msec(10), [&] { victim_ran = true; });
    e.run();
    EXPECT_FALSE(victim_ran);
    EXPECT_EQ(e.live_events(), 0u);
}

TEST(Engine, InterleavedScheduleCancelAtEqualTimesKeepsFifoOfSurvivors) {
    Engine e;
    std::vector<int> order;
    std::vector<EventId> ids;
    // Schedule 10 same-time events, cancelling every odd one as we go; the
    // survivors must fire in their original scheduling order.
    for (int i = 0; i < 10; ++i) {
        ids.push_back(
            e.schedule_at(TimePoint{} + msec(5), [&order, i] { order.push_back(i); }));
        if (i % 2 == 1) {
            EXPECT_TRUE(e.cancel(ids.back()));
        }
    }
    // Re-adding after a cancel goes to the back of the same-time FIFO.
    e.schedule_at(TimePoint{} + msec(5), [&order] { order.push_back(100); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8, 100}));
}

TEST(Engine, SpillListCountsTowardLiveEvents) {
    // Events beyond the wheel horizon (~19.5 h) park in the spill list; they
    // are still live events, cancellable, and fire in order once the clock
    // gets there.
    Engine e;
    std::vector<int> order;
    e.schedule_after(util::sec(200'000), [&] { order.push_back(2); });  // ~55 h
    const EventId doomed =
        e.schedule_after(util::sec(250'000), [&] { order.push_back(3); });
    e.schedule_after(msec(1), [&] { order.push_back(1); });
    EXPECT_EQ(e.live_events(), 3u);
    EXPECT_EQ(e.spill_live_events(), 2u);
    EXPECT_TRUE(e.cancel(doomed));
    EXPECT_EQ(e.live_events(), 2u);
    EXPECT_EQ(e.spill_live_events(), 1u);
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(e.live_events(), 0u);
    EXPECT_EQ(e.spill_live_events(), 0u);
}

TEST(Engine, EventScheduledAtNowDuringCallbackRunsAfterSameTimePeers) {
    Engine e;
    std::vector<int> order;
    e.schedule_at(TimePoint{} + msec(10), [&] {
        order.push_back(1);
        // Same timestamp as the in-flight batch: must run after peer 2.
        e.schedule_at(e.now(), [&order] { order.push_back(3); });
    });
    e.schedule_at(TimePoint{} + msec(10), [&order] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, CancelPendingChurnStaysConsistent) {
    // Deterministic schedule/cancel churn: 100 events across 4 timestamps,
    // every third cancelled, a third of the cancelled re-scheduled. pending()
    // and live_events() must track exactly, and the fired set must be the
    // survivors in (time, scheduling-order) sequence.
    Engine e;
    std::vector<int> fired;
    std::vector<int> expected;
    std::vector<std::pair<int, EventId>> live;
    for (int i = 0; i < 100; ++i) {
        const int slot = i % 4;
        const EventId id = e.schedule_at(TimePoint{} + msec(10 * (slot + 1)),
                                         [&fired, i] { fired.push_back(i); });
        if (i % 3 == 0) {
            EXPECT_TRUE(e.cancel(id));
            EXPECT_FALSE(e.pending(id));
        } else {
            EXPECT_TRUE(e.pending(id));
            live.emplace_back(slot, id);
        }
    }
    EXPECT_EQ(e.live_events(), live.size());
    for (int slot = 0; slot < 4; ++slot) {
        for (int i = 0; i < 100; ++i) {
            if (i % 4 == slot && i % 3 != 0) expected.push_back(i);
        }
    }
    e.run();
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(e.live_events(), 0u);
    for (const auto& [slot, id] : live) EXPECT_FALSE(e.pending(id));
}

TEST(Engine, CancelInsideCallbackOfAlreadyFiredEventIsBenign) {
    Engine e;
    EventId self = 0;
    bool ran = false;
    self = e.schedule_at(TimePoint{} + msec(1), [&] {
        ran = true;
        EXPECT_FALSE(e.cancel(self));  // it is firing right now
    });
    e.run();
    EXPECT_TRUE(ran);
}

TEST(Engine, CancelChurnLeavesNoTombstones) {
    // The kernel cancels and re-arms a decision timer on every scheduling
    // pass, so dead entries must never accumulate: live_events() has to track
    // the live set exactly — across the wheel *and* the far-future spill list
    // — not merely stay "bounded".
    Engine e;
    std::vector<EventId> live;
    std::size_t spilled = 0;
    for (int round = 0; round < 1000; ++round) {
        // Three schedules and two cancels per round; a tombstoning queue
        // would end this loop ~2000 entries heavier than the live set. Every
        // 16th event lands beyond the wheel horizon so spill occupancy churns
        // under the same invariant.
        for (int k = 0; k < 3; ++k) {
            if ((round * 3 + k) % 16 == 0) {
                live.push_back(e.schedule_at(
                    TimePoint{} + util::sec(100'000 + round % 7), [] {}));
            } else {
                live.push_back(
                    e.schedule_at(TimePoint{} + msec(10 + round % 7), [] {}));
            }
        }
        e.cancel(live[live.size() - 2]);
        live.erase(live.end() - 2);
        e.cancel(live[live.size() / 2]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(live.size() / 2));
        ASSERT_EQ(e.live_events(), live.size());
        ASSERT_LE(e.spill_live_events(), e.live_events());
        spilled = std::max(spilled, e.spill_live_events());
    }
    ASSERT_GT(spilled, 0u);  // the mix really exercised the spill list
    for (const EventId id : live) EXPECT_TRUE(e.pending(id));
    e.run();
    EXPECT_EQ(e.live_events(), 0u);
    EXPECT_EQ(e.spill_live_events(), 0u);
}

TEST(Engine, SlotReuseDoesNotResurrectStaleIds) {
    // Fired and cancelled ids must stay dead even after their slots are
    // recycled for new events (generation check).
    Engine e;
    const EventId fired = e.schedule_at(TimePoint{} + msec(1), [] {});
    e.run();
    const EventId cancelled = e.schedule_at(TimePoint{} + msec(2), [] {});
    EXPECT_TRUE(e.cancel(cancelled));
    std::vector<EventId> fresh;
    for (int i = 0; i < 4; ++i) {
        fresh.push_back(e.schedule_at(TimePoint{} + msec(5), [] {}));
    }
    EXPECT_FALSE(e.pending(fired));
    EXPECT_FALSE(e.pending(cancelled));
    EXPECT_FALSE(e.cancel(fired));
    EXPECT_FALSE(e.cancel(cancelled));
    for (const EventId id : fresh) EXPECT_TRUE(e.pending(id));
}

TEST(Engine, CancelledEventDoesNotBlockQueueProgress) {
    Engine e;
    bool second = false;
    const EventId a = e.schedule_at(TimePoint{} + msec(1), [] {});
    e.schedule_at(TimePoint{} + msec(2), [&] { second = true; });
    e.cancel(a);
    EXPECT_TRUE(e.step());
    EXPECT_TRUE(second);
    EXPECT_EQ(e.now(), TimePoint{} + msec(2));
}

}  // namespace
}  // namespace alps::sim
