// Golden-replay determinism guard for the simulation substrate.
//
// The O(1) rewrite of the event engine, the BSD run queues, and the kernel
// sampling surface must be *semantically invisible*: every seeded run has to
// replay the exact event order of the original (scan-based) implementation.
// This test runs a small but scheduling-rich simulation — mixed shares, a
// sleeper, a mid-run SIGSTOP/SIGCONT, a kill + reap — and serializes a
// per-cycle trace (cycle index, tick, per-entity exact consumption, kernel
// counters) that is compared byte-for-byte against a checked-in fixture
// generated before the engine swap.
//
// Regenerate (only when the *intended* semantics change, never to paper over
// an accidental divergence):
//   ALPS_REGEN_GOLDEN=1 ./test_sim <gtest filter SimReplay>
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "alps/sim_adapter.h"
#include "metrics/exact_cycle_log.h"
#include "os/behaviors.h"
#include "os/kernel.h"
#include "sim/engine.h"
#include "util/time.h"

namespace alps {
namespace {

using util::Duration;
using util::TimePoint;

#ifndef ALPS_GOLDEN_DIR
#error "ALPS_GOLDEN_DIR must point at tests/golden"
#endif

std::string golden_path() {
    return std::string(ALPS_GOLDEN_DIR) + "/sim_replay.golden";
}

/// Runs the reference scenario and serializes its per-cycle trace.
std::string replay_trace() {
    sim::Engine engine;
    os::Kernel kernel(engine);

    core::SchedulerConfig scfg;
    scfg.quantum = util::msec(10);
    core::SimAlps alps(kernel, scfg);

    metrics::ExactCycleLog log([&kernel](core::EntityId id) {
        return kernel.cpu_time(static_cast<os::Pid>(id));
    });
    alps.scheduler().set_cycle_observer(log.observer());

    // Mixed shares; one worker does periodic I/O so wakeup-boost preemption
    // and updatepri sleep credit are exercised, not just pure compute.
    const util::Share shares[] = {1, 2, 3, 5};
    std::vector<os::Pid> pids;
    for (std::size_t i = 0; i < 4; ++i) {
        auto behavior =
            i == 2 ? std::unique_ptr<os::Behavior>(std::make_unique<os::PhasedIoBehavior>(
                         util::msec(30), util::msec(70), util::msec(120)))
                   : std::unique_ptr<os::Behavior>(std::make_unique<os::CpuBoundBehavior>());
        const os::Pid pid = kernel.spawn("w" + std::to_string(i), /*uid=*/100,
                                         std::move(behavior));
        alps.manage(pid, shares[i]);
        pids.push_back(pid);
    }
    // An unmanaged background process that gets stopped, continued (long
    // enough for multi-second updatepri credit), killed, and reaped — the
    // process-table and run-queue paths the rewrite touches most.
    const os::Pid bg =
        kernel.spawn("bg", /*uid=*/101, std::make_unique<os::CpuBoundBehavior>(), 4);
    engine.schedule_at(TimePoint{} + util::msec(150),
                       [&] { kernel.send_signal(bg, os::Signal::kStop); });
    engine.schedule_at(TimePoint{} + util::msec(2650),
                       [&] { kernel.send_signal(bg, os::Signal::kCont); });
    engine.schedule_at(TimePoint{} + util::msec(3000), [&] {
        kernel.send_signal(bg, os::Signal::kKill);
        kernel.reap(bg);
    });

    while (log.cycle_count() < 40 && engine.now() < TimePoint{} + util::sec(30)) {
        engine.run_until(engine.now() + util::msec(100));
    }

    std::ostringstream out;
    for (const core::CycleRecord& rec : log.records()) {
        out << "cycle " << rec.index << " tick " << rec.end_tick;
        for (std::size_t i = 0; i < rec.ids.size(); ++i) {
            out << " | " << rec.ids[i] << ":" << rec.shares[i] << ":"
                << rec.consumed[i].count();
        }
        out << "\n";
    }
    out << "now_ns " << (engine.now() - TimePoint{}).count() << "\n";
    out << "ctx_switches " << kernel.context_switches() << "\n";
    out << "alps_cpu_ns " << alps.overhead_cpu().count() << "\n";
    for (const os::Pid pid : pids) {
        out << "pid " << pid << " cpu_ns " << kernel.cpu_time(pid).count()
            << " estcpu " << kernel.proc(pid).estcpu << " dispatches "
            << kernel.proc(pid).dispatches << "\n";
    }
    out << "ticks " << alps.driver().ticks_run() << " missed "
        << alps.driver().boundaries_missed() << "\n";
    return out.str();
}

TEST(SimReplay, PerCycleTraceMatchesGolden) {
    const std::string trace = replay_trace();
    if (std::getenv("ALPS_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(golden_path(), std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << golden_path();
        f << trace;
        GTEST_SKIP() << "regenerated " << golden_path();
    }
    std::ifstream f(golden_path(), std::ios::binary);
    ASSERT_TRUE(f.good()) << "missing fixture " << golden_path()
                          << " (run with ALPS_REGEN_GOLDEN=1 to create)";
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_EQ(trace, buf.str())
        << "simulation substrate diverged from the golden replay";
}

/// The same scenario must replay identically within one process run, too
/// (catches accidental dependence on global state or address-based ordering).
TEST(SimReplay, TraceIsStableAcrossRepeats) {
    EXPECT_EQ(replay_trace(), replay_trace());
}

}  // namespace
}  // namespace alps
