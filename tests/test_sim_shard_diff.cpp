// Differential replay for the sharded engine, extending the
// test_sim_wheel_diff.cpp pattern: a scripted workload runs once on a single
// serial sim::Engine (the oracle) and once per sharded configuration
// (shards ∈ {1, 2, 8} × {serial-multiplexed, threaded}); every shard's fired
// sequence must equal the oracle's (time, seq)-ordered fired sequence
// projected onto that shard's affinity groups, event for event.
//
// Workload shape (all parameters derived from the seed):
//  * kGroups = 8 affinity groups; group g maps to shard g % S — the same
//    grouping for every S, so the oracle run is shared by all configurations;
//  * each actor is a self-rearming chain of events confined to its group
//    (even-nanosecond times — ties among chains are possible and must
//    reproduce);
//  * some firings post a cross-group message due at the next epoch boundary
//    plus an odd, per-(sender, firing) offset — message times are globally
//    unique and collide with nothing, so their firing position is fully
//    determined by time in both the oracle (scheduled immediately) and the
//    sharded run (delivered at the boundary drain).
//
// This is the conservative-PDES projection argument of DESIGN.md §13 made
// executable; the TSan leg of scripts/check.sh re-runs the threaded cases
// under -fsanitize=thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/thread_pool.h"
#include "sim/engine.h"
#include "sim/shard.h"
#include "util/assert.h"
#include "util/time.h"

namespace alps::sim {
namespace {

using util::Duration;
using util::TimePoint;

constexpr int kGroups = 8;
constexpr int kActors = 24;         // 3 chains per group
constexpr int kFirings = 160;       // chain length
constexpr std::int64_t kEpochNs = 1'000'000;  // 1 ms lockstep epoch
constexpr std::int64_t kHorizonNs = 40 * kEpochNs;

[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: the test's only "randomness", fully deterministic.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t h3(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
    return mix(seed ^ mix(a ^ mix(b)));
}

/// One observed firing. `tag` >= 0: chain actor; `tag` < 0: message firing,
/// encoding -1 - sender_actor.
struct Fired {
    int tag = 0;
    std::int64_t at_ns = 0;
    bool operator==(const Fired&) const = default;
};

struct Workload {
    std::uint64_t seed = 0;

    [[nodiscard]] static int group_of(int actor) { return actor % kGroups; }

    /// First firing time: even, within the first two epochs, actor-distinct.
    [[nodiscard]] std::int64_t start_ns(int actor) const {
        return 2 + 2 * static_cast<std::int64_t>(
                        h3(seed, 0xA11CE, static_cast<std::uint64_t>(actor)) %
                        static_cast<std::uint64_t>(kEpochNs - 8));
    }

    /// Inter-firing gap: even, a fraction of an epoch so several chain
    /// events share each epoch (and ties across actors do occur).
    [[nodiscard]] std::int64_t delta_ns(int actor, int k) const {
        const auto h = h3(seed, static_cast<std::uint64_t>(actor),
                          static_cast<std::uint64_t>(k));
        return 2 * static_cast<std::int64_t>(1 + h % (kEpochNs / 8));
    }

    [[nodiscard]] bool sends_message(int actor, int k) const {
        return h3(seed ^ 0x5E17D, static_cast<std::uint64_t>(actor),
                  static_cast<std::uint64_t>(k)) %
                   4 ==
               0;
    }

    [[nodiscard]] int message_group(int actor, int k) const {
        const int g = group_of(actor);
        const auto h = h3(seed ^ 0x7A6E7, static_cast<std::uint64_t>(actor),
                          static_cast<std::uint64_t>(k));
        return (g + 1 + static_cast<int>(h % (kGroups - 1))) % kGroups;
    }

    /// The epoch boundary the event firing at `t` is produced toward (the
    /// horizon is a multiple of the epoch, so this never overshoots it).
    [[nodiscard]] static std::int64_t boundary_after(std::int64_t t_ns) {
        return ((t_ns + kEpochNs - 1) / kEpochNs) * kEpochNs;
    }

    /// Message delivery time: strictly after the boundary, odd (collides
    /// with no chain event and no boundary), unique per (sender, firing)
    /// within any window chains can reach (< 64 firings per epoch because
    /// delta >= 2 and 64 * (kEpochNs / 8) > kEpochNs... conservatively,
    /// firings per epoch <= kEpochNs / 2 — uniqueness instead comes from the
    /// k-term spreading wider than any same-boundary collision window).
    [[nodiscard]] std::int64_t message_at(int sender, int k,
                                          std::int64_t boundary) const {
        return boundary + 1 +
               2 * (static_cast<std::int64_t>(sender) +
                    static_cast<std::int64_t>(kActors) * k);
    }
};

/// Runs the workload on one serial engine; the returned log is the oracle's
/// exact (time, seq) firing order.
std::vector<Fired> run_oracle(const Workload& w) {
    Engine engine;
    std::vector<Fired> log;

    struct Ctx {
        const Workload* w;
        Engine* engine;
        std::vector<Fired>* log;
    } ctx{&w, &engine, &log};

    std::function<void(int, int)> fire_chain = [&](int actor, int k) {
        const std::int64_t t = ctx.engine->now().since_epoch.count();
        ctx.log->push_back({actor, t});
        if (ctx.w->sends_message(actor, k)) {
            const std::int64_t at =
                ctx.w->message_at(actor, k, Workload::boundary_after(t));
            // The oracle schedules the cross-group message immediately; its
            // globally unique time makes the firing position identical to
            // the sharded run's boundary-drain delivery.
            ctx.engine->schedule_at(TimePoint{util::nsec(at)},
                                    [&log, actor, at] {
                                        log.push_back({-1 - actor, at});
                                    });
        }
        if (k + 1 < kFirings) {
            const std::int64_t next = t + ctx.w->delta_ns(actor, k);
            ctx.engine->schedule_at(TimePoint{util::nsec(next)},
                                    [&fire_chain, actor, k] {
                                        fire_chain(actor, k + 1);
                                    });
        }
    };

    for (int a = 0; a < kActors; ++a) {
        const std::int64_t t0 = w.start_ns(a);
        engine.schedule_at(TimePoint{util::nsec(t0)},
                           [&fire_chain, a] { fire_chain(a, 0); });
    }
    engine.run_until(TimePoint{util::nsec(kHorizonNs)});
    return log;
}

struct ShardedRunResult {
    std::vector<std::vector<Fired>> per_shard;  ///< one log per shard
    std::vector<std::uint64_t> fired_per_shard;
    std::uint64_t messages = 0;
    std::uint64_t epochs = 0;
};

/// Runs the same workload on a ShardedEngine with `nshards` shards.
ShardedRunResult run_sharded(const Workload& w, unsigned nshards,
                             ShardedEngine::RunMode mode,
                             harness::ThreadPool* pool = nullptr) {
    ShardedEngine::Config cfg;
    cfg.shards = nshards;
    cfg.epoch = util::nsec(kEpochNs);
    cfg.channel_capacity = 16;  // small on purpose: exercise overflow
    ShardedEngine sharded(cfg);

    ShardedRunResult result;
    result.per_shard.resize(nshards);

    const auto shard_of_group = [nshards](int g) {
        return static_cast<unsigned>(g) % nshards;
    };

    std::function<void(int, int)> fire_chain = [&](int actor, int k) {
        const unsigned s = shard_of_group(Workload::group_of(actor));
        Engine& engine = sharded.engine(s);
        const std::int64_t t = engine.now().since_epoch.count();
        result.per_shard[s].push_back({actor, t});
        if (w.sends_message(actor, k)) {
            const unsigned to = shard_of_group(w.message_group(actor, k));
            const std::int64_t at =
                w.message_at(actor, k, Workload::boundary_after(t));
            ShardMessage msg;
            msg.at = TimePoint{util::nsec(at)};
            msg.cb = [&result, to, actor, at] {
                result.per_shard[to].push_back({-1 - actor, at});
            };
            sharded.post(s, to, std::move(msg));
        }
        if (k + 1 < kFirings) {
            const std::int64_t next = t + w.delta_ns(actor, k);
            engine.schedule_at(TimePoint{util::nsec(next)},
                               [&fire_chain, actor, k] {
                                   fire_chain(actor, k + 1);
                               });
        }
    };

    for (int a = 0; a < kActors; ++a) {
        const unsigned s = shard_of_group(Workload::group_of(a));
        const std::int64_t t0 = w.start_ns(a);
        sharded.engine(s).schedule_at(TimePoint{util::nsec(t0)},
                                      [&fire_chain, a] { fire_chain(a, 0); });
    }
    sharded.run_lockstep(TimePoint{util::nsec(kHorizonNs)}, mode, pool);

    for (unsigned s = 0; s < nshards; ++s) {
        result.fired_per_shard.push_back(sharded.engine(s).events_fired());
        EXPECT_EQ(sharded.engine(s).now().since_epoch.count(), kHorizonNs);
    }
    result.messages = sharded.stats().messages;
    result.epochs = sharded.stats().epochs;
    return result;
}

/// Oracle log projected onto one shard's affinity groups. A message firing
/// belongs to the group it was *delivered* to, which its tag does not carry —
/// so recompute the destination from (sender, time) is impossible; instead
/// the projection keys on the destination recorded at log time.
std::vector<Fired> project(const std::vector<Fired>& oracle_log,
                           const std::vector<unsigned>& dest_shard,
                           unsigned shard) {
    std::vector<Fired> out;
    for (std::size_t i = 0; i < oracle_log.size(); ++i) {
        if (dest_shard[i] == shard) out.push_back(oracle_log[i]);
    }
    return out;
}

/// Destination shard of every oracle log entry, for a given shard count.
std::vector<unsigned> destinations(const Workload& w,
                                   const std::vector<Fired>& oracle_log,
                                   unsigned nshards) {
    // Chain firings carry their actor; message firings carry the sender. The
    // destination group of a message is a pure function of (sender, firing
    // index) — recover the index by counting the sender's message firings in
    // time order (delivery times are strictly increasing in k for any fixed
    // sender, because message_at grows with k and boundaries never regress).
    std::vector<int> next_msg_k(kActors, 0);
    std::vector<unsigned> dest(oracle_log.size(), 0);
    for (std::size_t i = 0; i < oracle_log.size(); ++i) {
        const Fired& f = oracle_log[i];
        if (f.tag >= 0) {
            dest[i] = static_cast<unsigned>(Workload::group_of(f.tag)) % nshards;
            continue;
        }
        const int sender = -1 - f.tag;
        // Find the k-th message-sending firing of this sender.
        const auto si = static_cast<std::size_t>(sender);
        int k = next_msg_k[si];
        while (!w.sends_message(sender, k)) ++k;
        next_msg_k[si] = k + 1;
        dest[i] = static_cast<unsigned>(w.message_group(sender, k)) % nshards;
    }
    return dest;
}

class ShardDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardDiff, ShardedMatchesSerialProjectionAllShardCountsBothModes) {
    const Workload w{GetParam()};
    const std::vector<Fired> oracle = run_oracle(w);
    ASSERT_FALSE(oracle.empty());

    harness::ThreadPool pool(8);
    for (const unsigned nshards : {1u, 2u, 8u}) {
        const auto dest = destinations(w, oracle, nshards);
        const auto serial =
            run_sharded(w, nshards, ShardedEngine::RunMode::kSerial);
        const auto threaded = run_sharded(
            w, nshards, ShardedEngine::RunMode::kAuto, &pool);
        std::size_t total = 0;
        for (unsigned s = 0; s < nshards; ++s) {
            const auto expected = project(oracle, dest, s);
            EXPECT_EQ(serial.per_shard[s], expected)
                << "serial mode, shards=" << nshards << " shard=" << s
                << " seed=" << w.seed;
            EXPECT_EQ(threaded.per_shard[s], expected)
                << "threaded mode, shards=" << nshards << " shard=" << s
                << " seed=" << w.seed;
            total += expected.size();
        }
        EXPECT_EQ(total, oracle.size());
        // Engine counters are mode-invariant too (same events, same seq
        // assignment — not just the same firing order).
        EXPECT_EQ(serial.fired_per_shard, threaded.fired_per_shard);
        EXPECT_EQ(serial.messages, threaded.messages);
        EXPECT_EQ(serial.epochs, threaded.epochs);
        EXPECT_EQ(serial.epochs,
                  static_cast<std::uint64_t>(kHorizonNs / kEpochNs));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDiff,
                         ::testing::Values(0x5eed0001ULL, 0x5eed0002ULL,
                                           0x5eed0003ULL, 0xa155a155ULL));

// The single-shard degenerate case is *exact* engine equivalence: same
// events, same merged order, matching scheduled/fired counters.
TEST(ShardDiffDegenerate, SingleShardEqualsSerialEngineMergedOrder) {
    const Workload w{0xdeadbeefULL};
    const std::vector<Fired> oracle = run_oracle(w);
    const auto sharded = run_sharded(w, 1, ShardedEngine::RunMode::kSerial);
    EXPECT_EQ(sharded.per_shard[0], oracle);
}

TEST(ShardedEngineApi, PostFromBoundaryHookIsRejected) {
    ShardedEngine::Config cfg;
    cfg.shards = 2;
    cfg.epoch = util::msec(1);
    ShardedEngine sharded(cfg);
    bool threw = false;
    sharded.set_boundary_hook(0, [&](unsigned, TimePoint) {
        try {
            ShardMessage msg;
            msg.at = TimePoint{util::msec(100)};
            msg.cb = [] {};
            sharded.post(0, 1, std::move(msg));
        } catch (const util::ContractViolation&) {
            threw = true;
        }
    });
    sharded.run_lockstep(TimePoint{util::msec(1)});
    EXPECT_TRUE(threw);
}

TEST(ShardedEngineApi, MismatchedShardClocksAreRejected) {
    ShardedEngine::Config cfg;
    cfg.shards = 2;
    ShardedEngine sharded(cfg);
    sharded.engine(0).schedule_at(TimePoint{util::msec(3)}, [] {});
    sharded.engine(0).run_until(TimePoint{util::msec(5)});
    EXPECT_THROW(sharded.run_lockstep(TimePoint{util::msec(10)}),
                 util::ContractViolation);
}

TEST(ShardedEngineApi, HotKindMessagesDeliverCrossShard) {
    ShardedEngine::Config cfg;
    cfg.shards = 2;
    cfg.epoch = util::msec(1);
    ShardedEngine sharded(cfg);

    static std::uint64_t sum;  // static: hot fns take a raw ctx pointer
    sum = 0;
    struct Ctx {
        std::uint64_t* sum;
    } ctx{&sum};
    const Engine::HotKind kind = sharded.engine(1).register_hot(
        [](void* c, std::uint64_t arg) {
            *static_cast<Ctx*>(c)->sum += arg;
        },
        &ctx);

    // Shard 0 posts hot messages to shard 1 from a produce-phase event.
    sharded.engine(0).schedule_at(TimePoint{util::usec(100)}, [&] {
        for (std::int64_t i = 1; i <= 3; ++i) {
            ShardMessage msg;
            msg.at = TimePoint{util::msec(1) + util::usec(i)};
            msg.hot = kind;
            msg.arg = static_cast<std::uint64_t>(i) * 10;
            sharded.post(0, 1, std::move(msg));
        }
    });
    sharded.run_lockstep(TimePoint{util::msec(2)});
    EXPECT_EQ(sum, 60u);
    EXPECT_EQ(sharded.stats().messages, 3u);
}

// Publish/boundary hooks: each shard publishes a value before barrier A and
// reads everyone's after it — the cross-shard read pattern the ALPS sample
// board uses. Runs threaded so the TSan leg checks the happens-before edge.
TEST(ShardedEngineApi, BoundaryHookSeesAllPublishedState) {
    constexpr unsigned kShards = 4;
    ShardedEngine::Config cfg;
    cfg.shards = kShards;
    cfg.epoch = util::msec(1);
    ShardedEngine sharded(cfg);

    struct alignas(64) Cell {
        std::uint64_t value = 0;
    };
    Cell board[kShards];
    std::uint64_t bad_sums[kShards] = {};

    for (unsigned s = 0; s < kShards; ++s) {
        sharded.set_publish_hook(s, [&board, s](unsigned, TimePoint t) {
            board[s].value = static_cast<std::uint64_t>(t.since_epoch.count());
        });
        sharded.set_boundary_hook(s, [&](unsigned, TimePoint t) {
            const auto expect =
                static_cast<std::uint64_t>(t.since_epoch.count()) * kShards;
            std::uint64_t sum = 0;
            for (const Cell& c : board) sum += c.value;
            if (sum != expect) ++bad_sums[s];
        });
    }
    sharded.run_lockstep(TimePoint{util::msec(20)},
                         ShardedEngine::RunMode::kThreaded);
    for (unsigned s = 0; s < kShards; ++s) EXPECT_EQ(bad_sums[s], 0u);
    EXPECT_EQ(sharded.stats().epochs, 20u);
    EXPECT_EQ(sharded.stats().threaded_runs, 1u);
}

}  // namespace
}  // namespace alps::sim
