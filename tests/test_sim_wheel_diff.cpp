// Differential property test for the timing-wheel engine.
//
// The wheel rewrite (DESIGN.md §6) must preserve the exact (time, seq) FIFO
// total order of the indexed-heap engine it replaced — every seeded sweep
// and every golden replay depends on it. This file keeps a deliberately
// naive reference engine (a std::set ordered by (time, seq), the simplest
// structure that is obviously correct) and replays randomized seeded
// workloads on both engines, asserting identical firing orders, identical
// cancel outcomes, and identical clocks — including equal-timestamp FIFO
// ties, cancel churn, level-crossing cascades, and far-future events that
// park in the wheel's spill list and promote back as the clock approaches.
#include <cstdint>
#include <functional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "util/rng.h"
#include "util/time.h"

namespace alps::sim {
namespace {

using util::Duration;
using util::TimePoint;

// ----------------------------------------------------------------------------
// Reference engine: the (time, seq) FIFO contract, implemented as an ordered
// set. O(log n) everywhere and allocation-happy — fine for a test oracle.

class ReferenceHeapEngine {
public:
    using Callback = std::function<void()>;

    [[nodiscard]] TimePoint now() const { return now_; }

    std::uint64_t schedule_at(TimePoint t, Callback cb) {
        EXPECT_GE(t, now_);
        const std::uint64_t seq = next_seq_++;
        const std::uint64_t id = next_id_++;
        queue_.insert({t, seq});
        by_seq_.emplace(seq, Entry{t, id, std::move(cb)});
        seq_of_id_.emplace(id, seq);
        return id;
    }

    bool cancel(std::uint64_t id) {
        const auto it = seq_of_id_.find(id);
        if (it == seq_of_id_.end()) return false;
        const auto eit = by_seq_.find(it->second);
        queue_.erase({eit->second.time, it->second});
        by_seq_.erase(eit);
        seq_of_id_.erase(it);
        return true;
    }

    [[nodiscard]] bool pending(std::uint64_t id) const {
        return seq_of_id_.contains(id);
    }
    [[nodiscard]] std::size_t live_events() const { return queue_.size(); }

    bool step() {
        if (queue_.empty()) return false;
        fire(*queue_.begin());
        return true;
    }

    void run_until(TimePoint t) {
        EXPECT_GE(t, now_);
        while (!queue_.empty() && std::get<0>(*queue_.begin()) <= t) {
            fire(*queue_.begin());
        }
        now_ = t;
    }

    void run() {
        while (step()) {
        }
    }

private:
    struct Entry {
        TimePoint time;
        std::uint64_t id;
        Callback cb;
    };
    using Key = std::tuple<TimePoint, std::uint64_t>;  ///< (time, seq)

    void fire(Key key) {
        queue_.erase(key);
        const auto it = by_seq_.find(std::get<1>(key));
        Callback cb = std::move(it->second.cb);
        now_ = it->second.time;
        seq_of_id_.erase(it->second.id);
        by_seq_.erase(it);
        cb();
    }

    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    std::uint64_t next_id_ = 1;
    std::set<Key> queue_;
    std::unordered_map<std::uint64_t, Entry> by_seq_;
    std::unordered_map<std::uint64_t, std::uint64_t> seq_of_id_;
};

// ----------------------------------------------------------------------------
// Scripted workload: a deterministic op list generated from a seed, replayed
// independently on each engine. Cancels name schedule *ordinals* (not engine
// ids), so the same script drives both engines even though their id schemes
// differ. Callbacks may chain follow-up events; chained ordinals are assigned
// in firing order, which both engines must share — any divergence shows up
// as a log mismatch.

struct Op {
    enum Kind : std::uint8_t { kSchedule, kCancel, kRunUntil, kStep };
    Kind kind = kSchedule;
    std::int64_t delta_ns = 0;   ///< schedule: delay; run_until: clock advance
    std::size_t target = 0;      ///< cancel: ordinal of the victim schedule
    int chain = 0;               ///< schedule: follow-ups fired from callback
    std::int64_t chain_delta_ns = 0;
};

struct Script {
    std::vector<Op> ops;
    std::size_t schedule_count = 0;  ///< script-level (non-chained) schedules
};

struct Fired {
    std::size_t ordinal;
    std::int64_t at_ns;

    friend bool operator==(const Fired&, const Fired&) = default;
};

struct Replay {
    std::vector<Fired> log;
    std::vector<bool> cancel_results;
    std::int64_t final_now_ns = 0;
    std::size_t final_live = 0;
};

/// `schedule(TimePoint, std::function<void()>)` adapts each engine's
/// schedule_at and returns its id as uint64.
template <typename EngineT, typename ScheduleFn>
Replay replay_script(const Script& script, EngineT& eng, ScheduleFn schedule) {
    Replay out;
    std::vector<std::uint64_t> ids(script.schedule_count, 0);
    std::size_t next_ordinal = 0;
    std::size_t next_chain_ordinal = script.schedule_count;

    // Builds the callback for one event; chained follow-ups recurse through
    // the same factory, drawing fresh ordinals in firing order.
    std::function<std::function<void()>(std::size_t, int, std::int64_t)> make_cb =
        [&](std::size_t ordinal, int chain,
            std::int64_t chain_delta) -> std::function<void()> {
        return [&, ordinal, chain, chain_delta] {
            out.log.push_back({ordinal, eng.now().since_epoch.count()});
            if (chain > 0) {
                schedule(eng.now() + Duration{chain_delta},
                         make_cb(next_chain_ordinal++, chain - 1, chain_delta));
            }
        };
    };

    for (const Op& op : script.ops) {
        switch (op.kind) {
            case Op::kSchedule: {
                const std::size_t ordinal = next_ordinal++;
                ids[ordinal] = schedule(eng.now() + Duration{op.delta_ns},
                                        make_cb(ordinal, op.chain, op.chain_delta_ns));
                break;
            }
            case Op::kCancel: {
                const std::uint64_t id = ids[op.target];
                out.cancel_results.push_back(id != 0 && eng.cancel(id));
                break;
            }
            case Op::kRunUntil:
                eng.run_until(eng.now() + Duration{op.delta_ns});
                break;
            case Op::kStep:
                eng.step();
                break;
        }
    }
    eng.run();
    out.final_now_ns = eng.now().since_epoch.count();
    out.final_live = eng.live_events();
    return out;
}

// Delay profiles for the mixes the wheel cares about. The wheel horizon is
// 6 levels x 6 bits over 2^10-ns ticks = 2^46 ns ≈ 19.5 h; "far" deltas
// exceed it, guaranteeing a stay in the spill list.
enum class Mix { kTies, kCancelHeavy, kLevelCrossing, kFarFuture, kEverything };

std::int64_t draw_delta(util::Rng& rng, Mix mix) {
    switch (mix) {
        case Mix::kTies:
            // A handful of distinct instants, heavy on exact collisions and
            // sub-tick spacings (the wheel buckets these together; firing
            // order must still come from (time, seq), not bucket order).
            return 100 * rng.uniform_int(0, 7);
        case Mix::kCancelHeavy:
            return rng.uniform_int(0, 2'000'000);  // <= 2 ms
        case Mix::kLevelCrossing: {
            // Log-uniform up to ~2^44 ns (~4.9 h): spans wheel levels 0..5.
            const std::int64_t base = std::int64_t{1} << rng.uniform_int(0, 44);
            return base + rng.uniform_int(0, base - 1);
        }
        case Mix::kFarFuture:
            // 1 in 3 beyond the ~19.5 h horizon (up to ~78 h) -> spill list.
            if (rng.uniform_int(0, 2) == 0) {
                return util::sec(70'400).count() +
                       rng.uniform_int(0, util::sec(210'000).count());
            }
            return rng.uniform_int(0, util::sec(60).count());
        case Mix::kEverything:
            return draw_delta(rng, static_cast<Mix>(rng.uniform_int(0, 3)));
    }
    return 0;
}

Script make_script(std::uint64_t seed, Mix mix, std::size_t op_count) {
    util::Rng rng(seed);
    Script s;
    const std::int64_t cancel_weight = mix == Mix::kCancelHeavy ? 40 : 20;
    for (std::size_t i = 0; i < op_count; ++i) {
        const std::int64_t roll = rng.uniform_int(0, 99);
        Op op;
        if (roll < 55 || s.schedule_count == 0) {
            op.kind = Op::kSchedule;
            op.delta_ns = draw_delta(rng, mix);
            if (rng.uniform_int(0, 9) == 0) {
                op.chain = static_cast<int>(rng.uniform_int(1, 3));
                op.chain_delta_ns = draw_delta(rng, mix);
            }
            ++s.schedule_count;
        } else if (roll < 55 + cancel_weight) {
            op.kind = Op::kCancel;
            op.target = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(s.schedule_count) - 1));
        } else if (roll < 95) {
            op.kind = Op::kStep;
        } else {
            op.kind = Op::kRunUntil;
            // Advance far enough to cross cascade boundaries (and, in the
            // far-future mix, to promote spilled events).
            op.delta_ns = draw_delta(rng, mix) / 2;
        }
        s.ops.push_back(op);
    }
    return s;
}

/// Runs one seeded script on both engines and asserts equivalence.
void check_equivalence(std::uint64_t seed, Mix mix, std::size_t op_count,
                       std::uint64_t* cascades_out = nullptr,
                       std::uint64_t* promotions_out = nullptr,
                       std::size_t* spill_peak_out = nullptr) {
    const Script script = make_script(seed, mix, op_count);

    Engine wheel;
    std::size_t spill_peak = 0;
    const Replay w =
        replay_script(script, wheel, [&](TimePoint t, std::function<void()> cb) {
            const EventId id = wheel.schedule_at(t, std::move(cb));
            spill_peak = std::max(spill_peak, wheel.spill_live_events());
            return static_cast<std::uint64_t>(id);
        });

    ReferenceHeapEngine ref;
    const Replay r =
        replay_script(script, ref, [&](TimePoint t, std::function<void()> cb) {
            return ref.schedule_at(t, std::move(cb));
        });

    ASSERT_EQ(w.log.size(), r.log.size()) << "seed " << seed;
    for (std::size_t i = 0; i < w.log.size(); ++i) {
        ASSERT_EQ(w.log[i], r.log[i])
            << "seed " << seed << ": firing divergence at index " << i
            << " (wheel ordinal " << w.log[i].ordinal << " @" << w.log[i].at_ns
            << ", ref ordinal " << r.log[i].ordinal << " @" << r.log[i].at_ns << ")";
    }
    EXPECT_EQ(w.cancel_results, r.cancel_results) << "seed " << seed;
    EXPECT_EQ(w.final_now_ns, r.final_now_ns) << "seed " << seed;
    EXPECT_EQ(w.final_live, r.final_live) << "seed " << seed;
    EXPECT_EQ(wheel.live_events(), 0u);

    if (cascades_out != nullptr) *cascades_out = wheel.wheel_cascades();
    if (promotions_out != nullptr) *promotions_out = wheel.spill_promotions();
    if (spill_peak_out != nullptr) *spill_peak_out = spill_peak;
}

// ----------------------------------------------------------------------------

TEST(WheelDiff, EqualTimestampTiesMatchReferenceFifo) {
    for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        check_equivalence(seed, Mix::kTies, 1500);
    }
}

TEST(WheelDiff, CancelHeavyChurnMatchesReference) {
    for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
        check_equivalence(seed, Mix::kCancelHeavy, 2000);
    }
}

TEST(WheelDiff, LevelCrossingCascadesMatchReference) {
    std::uint64_t total_cascades = 0;
    for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
        std::uint64_t cascades = 0;
        check_equivalence(seed, Mix::kLevelCrossing, 1200, &cascades);
        total_cascades += cascades;
    }
    // The mix spans all six levels, so the equivalence above must actually
    // have exercised the cascade path (not vacuously passed on level 0).
    EXPECT_GT(total_cascades, 0u);
}

TEST(WheelDiff, FarFutureSpillAndPromotionMatchReference) {
    std::uint64_t total_promotions = 0;
    std::size_t spill_peak = 0;
    for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
        std::uint64_t promotions = 0;
        std::size_t peak = 0;
        check_equivalence(seed, Mix::kFarFuture, 1000, nullptr, &promotions, &peak);
        total_promotions += promotions;
        spill_peak = std::max(spill_peak, peak);
    }
    EXPECT_GT(spill_peak, 0u);        // events really parked beyond the horizon
    EXPECT_GT(total_promotions, 0u);  // and really promoted back into the wheel
}

TEST(WheelDiff, MixedWorkloadsMatchReference) {
    for (const std::uint64_t seed : {41u, 42u, 43u, 44u, 45u, 46u}) {
        check_equivalence(seed, Mix::kEverything, 1800);
    }
}

// The hot (devirtualized) path must obey the same total order as the generic
// std::function path — interleave both kinds at equal timestamps.
TEST(WheelDiff, HotAndGenericEventsShareOneFifo) {
    Engine e;
    std::vector<std::uint64_t> order;
    const Engine::HotKind kind = e.register_hot(
        [](void* ctx, std::uint64_t arg) {
            static_cast<std::vector<std::uint64_t>*>(ctx)->push_back(arg);
        },
        &order);
    for (std::uint64_t i = 0; i < 10; ++i) {
        if (i % 2 == 0) {
            e.schedule_at(TimePoint{} + util::msec(5), kind, i);
        } else {
            e.schedule_at(TimePoint{} + util::msec(5), [&order, i] {
                order.push_back(i);
            });
        }
    }
    e.run();
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace alps::sim
