// Tests for the telemetry subsystem: recorder rings, metrics registry,
// .alpstrace serialization, semantic verification, diff, and Chrome export —
// plus the scheduler-integration and determinism contracts the alps-trace
// CLI relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "alps/scheduler.h"
#include "mock_control.h"
#include "sim/engine.h"
#include "telemetry/chrome_export.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace_file.h"
#include "util/rng.h"
#include "util/time.h"
#include "workload/experiments.h"

namespace alps::telemetry {
namespace {

// ----- helpers -------------------------------------------------------------

class TempTracePath {
public:
    explicit TempTracePath(const std::string& stem)
        : path_(::testing::TempDir() + stem + ".alpstrace") {}
    ~TempTracePath() { std::remove(path_.c_str()); }
    [[nodiscard]] const std::string& str() const { return path_; }

private:
    std::string path_;
};

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Record make_record(EventType type, std::uint16_t name, std::uint32_t track,
                   std::uint64_t ts_ns, std::uint32_t scope = 0,
                   std::uint64_t value = 0) {
    Record r;
    r.ts_ns = ts_ns;
    r.scope = scope;
    r.track = track;
    r.type = static_cast<std::uint16_t>(type);
    r.name = name;
    r.value = value;
    return r;
}

// ----- recorder ------------------------------------------------------------

TEST(Recorder, InactiveByDefaultAndEmitIsANoOp) {
    ASSERT_FALSE(active());
    emit(make_record(EventType::kInstant, kNameTick, 0, 1));  // must not crash
    Session session;
    EXPECT_EQ(session.recorded(), 0u);
}

TEST(Recorder, SessionPreInternsWellKnownNames) {
    Session session;
    const std::vector<std::string> names = session.names();
    ASSERT_EQ(names.size(), std::size_t{kWellKnownNameCount});
    EXPECT_EQ(names[kNameNone], "");
    EXPECT_EQ(names[kNameRunning], "running");
    EXPECT_EQ(names[kNameEligible], "eligible");
    EXPECT_EQ(names[kNameIneligible], "ineligible");
    EXPECT_EQ(names[kNameTick], "tick");
    EXPECT_EQ(names[kNameCycle], "cycle");
    EXPECT_EQ(names[kNameQuarantine], "quarantine");
    EXPECT_EQ(names[kNameDrop], "drop");
    EXPECT_EQ(names[kNameEpoch], "epoch");
    EXPECT_EQ(names[kNameHop], "hop");
}

TEST(Recorder, InternIsStableAndDeduplicates) {
    Session session;
    const std::uint16_t a = session.intern("custom.metric");
    EXPECT_EQ(a, kWellKnownNameCount);  // first id after the well-knowns
    EXPECT_EQ(session.intern("custom.metric"), a);
    EXPECT_EQ(session.intern("running"), kNameRunning);
    EXPECT_EQ(session.names()[a], "custom.metric");
}

TEST(Recorder, AttachedSessionCapturesEmittedRecords) {
    Session session;
    attach(session);
    set_scope(3);
    set_now_ns(250);
    span_begin(kNameEligible, 7);
    set_now_ns(900);
    span_end(kNameEligible, 7);
    instant(kNameTick, 0, 42);
    detach();
    EXPECT_FALSE(active());

    const std::vector<Record> records = session.drain();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0], make_record(EventType::kSpanBegin, kNameEligible, 7, 250, 3));
    EXPECT_EQ(records[1], make_record(EventType::kSpanEnd, kNameEligible, 7, 900, 3));
    EXPECT_EQ(records[2], make_record(EventType::kInstant, kNameTick, 0, 900, 3, 42));
    EXPECT_EQ(session.dropped(), 0u);
    EXPECT_EQ(session.recorded(), 0u);  // drain() moved them out
}

TEST(Recorder, SetScopeRewindsTheAmbientClock) {
    set_now_ns(12345);
    set_scope(9);
    EXPECT_EQ(now_ns(), 0u);  // scopes are independent simulations
    EXPECT_EQ(scope(), 9u);
    set_scope(0);
}

TEST(Recorder, RingOverflowDropsNewRecordsAndCountsThem) {
    Session session({.ring_capacity = 4});
    attach(session);
    set_scope(0);
    for (std::uint64_t i = 0; i < 10; ++i) {
        set_now_ns(i);
        instant(kNameTick, 0, i);
    }
    detach();

    EXPECT_EQ(session.dropped(), 6u);
    const std::vector<Record> records = session.drain();
    ASSERT_EQ(records.size(), 4u);
    // Drop-new policy: the trace is an exact prefix of what happened.
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].value, i);
    }
}

TEST(Recorder, WrapModeOverwritesOldestAndUnrollsInEmissionOrder) {
    Session session({.ring_capacity = 4, .wrap = true});
    attach(session);
    set_scope(0);
    for (std::uint64_t i = 0; i < 10; ++i) {
        set_now_ns(i);
        instant(kNameTick, 0, i);
    }
    detach();

    EXPECT_EQ(session.dropped(), 6u);  // overwritten records still counted
    const std::vector<Record> records = session.drain();
    ASSERT_EQ(records.size(), 4u);
    // Flight-recorder policy: the newest window survives, oldest-first.
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].value, 6 + i);
    }
}

TEST(Recorder, TrySnapshotTailTakesNewestWithoutDraining) {
    Session session({.ring_capacity = 8, .wrap = true});
    attach(session);
    set_scope(2);
    for (std::uint64_t i = 0; i < 20; ++i) {
        set_now_ns(i);
        instant(kNameTick, 0, i);
    }
    detach();

    std::vector<Record> records;
    std::vector<std::string> names;
    std::uint64_t dropped = 0;
    ASSERT_TRUE(session.try_snapshot_tail(3, records, names, dropped));
    ASSERT_EQ(records.size(), 3u);
    // The 3 newest of the surviving window [12..19].
    EXPECT_EQ(records[0].value, 17u);
    EXPECT_EQ(records[2].value, 19u);
    // 12 overwritten + 5 older-than-the-tail survivors.
    EXPECT_EQ(dropped, 17u);
    EXPECT_FALSE(names.empty());
    // Snapshot is non-destructive: the full window still drains.
    EXPECT_EQ(session.drain().size(), 8u);
}

TEST(Recorder, DumpAttachedSessionTailWritesAReadableTrace) {
    TempTracePath path("flight_recorder_dump");
    EXPECT_FALSE(dump_attached_session_tail(path.str(), 100));  // nothing attached

    Session session({.ring_capacity = 4, .wrap = true});
    attach(session);
    set_scope(5);
    for (std::uint64_t i = 0; i < 9; ++i) {
        set_now_ns(i);
        instant(kNameTick, 0, i);
    }
    ASSERT_TRUE(dump_attached_session_tail(path.str(), 100));
    detach();

    const TraceFile trace = read_trace_file(path.str());
    ASSERT_EQ(trace.records.size(), 4u);
    EXPECT_EQ(trace.records.front().value, 5u);  // newest window, oldest first
    EXPECT_EQ(trace.records.back().value, 8u);
    EXPECT_EQ(trace.records.front().scope, 5u);
    EXPECT_EQ(trace.dropped_records, 5u);
    EXPECT_TRUE(verify_trace(trace).empty());
}

TEST(Recorder, SessionIsReusableAfterDetach) {
    Session session({.ring_capacity = 16});
    attach(session);
    instant(kNameTick, 0, 1);
    detach();
    EXPECT_EQ(session.drain().size(), 1u);

    attach(session);
    instant(kNameTick, 0, 2);
    instant(kNameCycle, 0, 1);
    detach();
    EXPECT_EQ(session.drain().size(), 2u);
}

// ----- metrics -------------------------------------------------------------

TEST(Metrics, CountersAndGaugesFindOrCreate) {
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("a").add(3);
    reg.counter("a").add(2);
    reg.gauge("g").set(1.5);
    EXPECT_EQ(reg.counter("a").value(), 5u);
    EXPECT_EQ(reg.gauge("g").value(), 1.5);
    EXPECT_FALSE(reg.empty());
    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(Metrics, HistogramQuantilesAreLogBucketApproximations) {
    Histogram h;
    EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
    for (int i = 0; i < 90; ++i) h.record(100);   // bucket [64, 127]
    for (int i = 0; i < 10; ++i) h.record(9000);  // bucket [8192, 16383]
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 90u * 100u + 10u * 9000u);
    // p50 falls in the [64,127] bucket; the geometric midpoint is ~90.5.
    EXPECT_NEAR(h.quantile(0.50), 90.5, 1.0);
    // p99 falls in the [8192,16383] bucket; midpoint ~11585.
    EXPECT_NEAR(h.quantile(0.99), 11585.0, 10.0);
}

TEST(Metrics, HistogramOfZerosReportsZero) {
    Histogram h;
    for (int i = 0; i < 5; ++i) h.record(0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Metrics, ToJsonIsSortedAndSkipsEmptySections) {
    MetricsRegistry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first").add(2);
    const std::string json = reg.to_json().dump(0);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_EQ(json.find("\"gauges\""), std::string::npos);
    EXPECT_EQ(json.find("\"histograms\""), std::string::npos);
    EXPECT_LT(json.find("a.first"), json.find("z.last"));  // deterministic order
}

TEST(Metrics, EngineExportsWheelAndArenaCounters) {
    // The timing-wheel engine must surface its structural health counters —
    // cascades, spill promotions, arena footprint — through export_metrics,
    // which is what lands in the run.telemetry block of every BENCH_*.json.
    sim::Engine eng;
    // Level-crossing schedule (forces cascades) plus one far-future event
    // that promotes out of the spill list before firing.
    for (int i = 0; i < 64; ++i) {
        eng.schedule_after(util::msec(1 + 97 * i), [] {});
    }
    const auto far = eng.schedule_after(util::sec(80'000), [] {});  // > horizon
    eng.run_until(util::TimePoint{} + util::sec(79'000));
    EXPECT_TRUE(eng.cancel(far));
    eng.run();

    MetricsRegistry reg;
    eng.export_metrics(reg);
    EXPECT_GT(reg.counter("engine.wheel_cascades").value(), 0u);
    EXPECT_EQ(reg.counter("engine.wheel_spill_promotions").value(),
              eng.spill_promotions());
    EXPECT_GT(reg.counter("engine.arena_bytes").value(), 0u);
    EXPECT_GE(reg.counter("engine.arena_high_water").value(),
              reg.counter("engine.arena_bytes").value());
    const std::string json = reg.to_json().dump(0);
    EXPECT_NE(json.find("engine.wheel_cascades"), std::string::npos);
    EXPECT_NE(json.find("engine.wheel_spill_promotions"), std::string::npos);
    EXPECT_NE(json.find("engine.arena_bytes"), std::string::npos);
    EXPECT_NE(json.find("engine.arena_high_water"), std::string::npos);
}

TEST(Metrics, SimRunExportsWheelCountersIntoRegistry) {
    // End-to-end: a real simulated run wired the way the sweep harness wires
    // it (SimRunConfig::metrics) must deposit the wheel counters.
    workload::SimRunConfig cfg;
    cfg.shares = {5, 5, 5};
    cfg.quantum = util::msec(10);
    cfg.measure_cycles = 3;
    cfg.warmup_cycles = 1;
    MetricsRegistry reg;
    cfg.metrics = &reg;
    const auto res = workload::run_cpu_bound_experiment(cfg);
    EXPECT_FALSE(res.timed_out);
    // The kernel's decision-timer churn sweeps the wheel; cascades are
    // guaranteed once the clock crosses any level-0 boundary.
    EXPECT_GT(reg.counter("engine.events_fired").value(), 0u);
    EXPECT_GT(reg.counter("engine.wheel_cascades").value(), 0u);
    EXPECT_GT(reg.counter("engine.arena_high_water").value(), 0u);
}

// ----- .alpstrace serialization --------------------------------------------

TEST(TraceFileIo, EmptyTraceRoundTrips) {
    TempTracePath path("empty");
    TraceFile trace;
    write_trace_file(path.str(), trace);
    const TraceFile back = read_trace_file(path.str());
    EXPECT_EQ(back.version, kTraceVersion);
    EXPECT_TRUE(back.names.empty());
    EXPECT_TRUE(back.records.empty());
    EXPECT_EQ(back.dropped_records, 0u);
}

TEST(TraceFileIo, RandomTracesRoundTripExactly) {
    util::Rng rng(20260806);
    for (int iteration = 0; iteration < 20; ++iteration) {
        TraceFile trace;
        trace.dropped_records = rng.next_u64() % 1000;
        const auto name_count = static_cast<std::size_t>(rng.uniform_int(1, 12));
        for (std::size_t i = 0; i < name_count; ++i) {
            std::string name;
            const auto len = static_cast<std::size_t>(rng.uniform_int(0, 24));
            for (std::size_t c = 0; c < len; ++c) {
                name.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
            }
            trace.names.push_back(std::move(name));
        }
        const auto record_count = static_cast<std::size_t>(rng.uniform_int(0, 200));
        for (std::size_t i = 0; i < record_count; ++i) {
            Record r;
            r.ts_ns = rng.next_u64();
            r.scope = static_cast<std::uint32_t>(rng.next_u64());
            r.track = static_cast<std::uint32_t>(rng.next_u64());
            r.type = static_cast<std::uint16_t>(rng.uniform_int(1, 4));
            r.name = static_cast<std::uint16_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(name_count) - 1));
            r.value = rng.next_u64();
            trace.records.push_back(r);
        }
        TempTracePath path("roundtrip");
        write_trace_file(path.str(), trace);
        const TraceFile back = read_trace_file(path.str());
        EXPECT_EQ(back.names, trace.names);
        EXPECT_EQ(back.records, trace.records);
        EXPECT_EQ(back.dropped_records, trace.dropped_records);
    }
}

TEST(TraceFileIo, RejectsMissingFile) {
    EXPECT_THROW(read_trace_file(::testing::TempDir() + "no-such.alpstrace"),
                 std::runtime_error);
}

TEST(TraceFileIo, RejectsBadMagic) {
    TempTracePath path("badmagic");
    TraceFile trace;
    trace.names = {"", "running"};
    write_trace_file(path.str(), trace);
    std::string bytes = slurp(path.str());
    bytes[0] = 'X';
    spit(path.str(), bytes);
    EXPECT_THROW(read_trace_file(path.str()), std::runtime_error);
}

TEST(TraceFileIo, RejectsTruncatedHeader) {
    TempTracePath path("shorthdr");
    TraceFile trace;
    write_trace_file(path.str(), trace);
    spit(path.str(), slurp(path.str()).substr(0, 30));
    EXPECT_THROW(read_trace_file(path.str()), std::runtime_error);
}

TEST(TraceFileIo, RejectsTruncatedRecordRegion) {
    TempTracePath path("shortrec");
    TraceFile trace;
    trace.names = {""};
    trace.records.push_back(make_record(EventType::kInstant, 0, 0, 1));
    trace.records.push_back(make_record(EventType::kInstant, 0, 0, 2));
    write_trace_file(path.str(), trace);
    const std::string bytes = slurp(path.str());
    spit(path.str(), bytes.substr(0, bytes.size() - 10));
    EXPECT_THROW(read_trace_file(path.str()), std::runtime_error);
}

TEST(TraceFileIo, RejectsTrailingGarbage) {
    TempTracePath path("trailing");
    TraceFile trace;
    trace.names = {""};
    trace.records.push_back(make_record(EventType::kInstant, 0, 0, 1));
    write_trace_file(path.str(), trace);
    spit(path.str(), slurp(path.str()) + "junk");
    EXPECT_THROW(read_trace_file(path.str()), std::runtime_error);
}

// ----- semantic verification ------------------------------------------------

TraceFile minimal_trace() {
    TraceFile trace;
    trace.names = {"", "running", "eligible"};
    return trace;
}

TEST(VerifyTrace, BalancedSpansAndInstantsAreValid) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kSpanBegin, 1, 4, 100));
    trace.records.push_back(make_record(EventType::kInstant, 2, 0, 150));
    trace.records.push_back(make_record(EventType::kSpanEnd, 1, 4, 200));
    EXPECT_TRUE(verify_trace(trace).empty());
}

TEST(VerifyTrace, UnclosedSpanAtEndOfTraceIsTolerated) {
    // Rings drop the suffix under overflow, so a trace is a prefix; a span
    // that never closes is expected, not an error.
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kSpanBegin, 1, 4, 100));
    EXPECT_TRUE(verify_trace(trace).empty());
}

TEST(VerifyTrace, FlagsEndWithoutBegin) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kSpanEnd, 1, 4, 100));
    EXPECT_FALSE(verify_trace(trace).empty());
}

TEST(VerifyTrace, FlagsOutOfRangeNameId) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kInstant, 99, 0, 100));
    EXPECT_FALSE(verify_trace(trace).empty());
}

TEST(VerifyTrace, FlagsUnknownEventType) {
    TraceFile trace = minimal_trace();
    Record r = make_record(EventType::kInstant, 1, 0, 100);
    r.type = 9;
    trace.records.push_back(r);
    EXPECT_FALSE(verify_trace(trace).empty());
}

TEST(VerifyTrace, FlagsNonzeroReservedField) {
    TraceFile trace = minimal_trace();
    Record r = make_record(EventType::kInstant, 1, 0, 100);
    r.reserved = 7;
    trace.records.push_back(r);
    EXPECT_FALSE(verify_trace(trace).empty());
}

TEST(VerifyTrace, FlagsTimeRegressionWithinAScope) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kInstant, 1, 0, 500));
    trace.records.push_back(make_record(EventType::kInstant, 1, 0, 400));
    EXPECT_FALSE(verify_trace(trace).empty());
}

TEST(VerifyTrace, ScopesHaveIndependentClocks) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kInstant, 1, 0, 500, /*scope=*/0));
    trace.records.push_back(make_record(EventType::kInstant, 1, 0, 100, /*scope=*/1));
    EXPECT_TRUE(verify_trace(trace).empty());
}

// ----- diff -----------------------------------------------------------------

TEST(DiffTraces, IdenticalTracesCompareEqual) {
    TraceFile a = minimal_trace();
    a.records.push_back(make_record(EventType::kInstant, 1, 0, 100));
    const TraceDiff d = diff_traces(a, a);
    EXPECT_TRUE(d.identical());
    EXPECT_EQ(d.differing_records, 0u);
}

TEST(DiffTraces, ReportsDifferingRecordsAndLengthMismatch) {
    TraceFile a = minimal_trace();
    a.records.push_back(make_record(EventType::kInstant, 1, 0, 100));
    a.records.push_back(make_record(EventType::kInstant, 1, 0, 200));
    TraceFile b = a;
    b.records[0].ts_ns = 101;   // one mismatch
    b.records.pop_back();       // plus one record only in a
    const TraceDiff d = diff_traces(a, b);
    EXPECT_FALSE(d.identical());
    EXPECT_EQ(d.differing_records, 2u);
    EXPECT_FALSE(d.details.empty());
}

TEST(DiffTraces, ReportsNameTableDivergence) {
    TraceFile a = minimal_trace();
    TraceFile b = minimal_trace();
    b.names.push_back("extra");
    EXPECT_TRUE(diff_traces(a, b).names_differ);
}

// ----- chrome export --------------------------------------------------------

TEST(ChromeExport, EmitsMetadataSpansAndInstants) {
    TraceFile trace = minimal_trace();
    trace.records.push_back(make_record(EventType::kSpanBegin, 2, 1, 1000));
    trace.records.push_back(make_record(EventType::kSpanBegin, 1, 1, 1500));
    trace.records.push_back(make_record(EventType::kSpanEnd, 1, 1, 2000));
    trace.records.push_back(make_record(EventType::kSpanEnd, 2, 1, 2500));
    trace.records.push_back(
        make_record(EventType::kInstant, 1, 0, 3000, /*scope=*/0, /*value=*/4));

    const std::string json = to_chrome_trace(trace).dump(0);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"eligible\""), std::string::npos);
    // "running" spans render on their own lane (track*2+1) so state and cpu
    // spans never have to nest inside each other.
    EXPECT_NE(json.find("\"tid\":3"), std::string::npos);  // running on lane 3
    EXPECT_NE(json.find("\"tid\":2"), std::string::npos);  // eligible on lane 2
}

// ----- scheduler integration ------------------------------------------------

core::SchedulerConfig sched_config() {
    core::SchedulerConfig cfg;
    cfg.quantum = util::msec(10);
    return cfg;
}

std::vector<Record> record_scripted_run(Session& session) {
    testing::MockControl mc;
    mc.ensure(1);
    mc.ensure(2);
    core::Scheduler sched(mc, sched_config());
    attach(session);
    set_scope(0);
    sched.add(1, 1);
    sched.add(2, 1);
    sched.tick();  // both become eligible
    mc.entities[1].cpu += util::msec(20);  // entity 1 overruns the cycle
    sched.tick();
    detach();
    return session.drain();
}

TEST(SchedulerTelemetry, EmitsEligibilitySpansAndTickInstants) {
    Session session;
    const std::vector<Record> records = record_scripted_run(session);
    ASSERT_FALSE(records.empty());

    std::size_t ineligible_begins = 0;
    std::size_t eligible_begins = 0;
    std::size_t tick_instants = 0;
    for (const Record& r : records) {
        const auto type = static_cast<EventType>(r.type);
        if (type == EventType::kSpanBegin && r.name == kNameIneligible) {
            ++ineligible_begins;
        }
        if (type == EventType::kSpanBegin && r.name == kNameEligible) {
            ++eligible_begins;
        }
        if (type == EventType::kInstant && r.name == kNameTick) ++tick_instants;
    }
    // add() opens an ineligible span per entity; tick 1 flips both eligible;
    // tick 2 suspends the overrunning entity (back to ineligible).
    EXPECT_EQ(ineligible_begins, 3u);
    EXPECT_EQ(eligible_begins, 2u);
    EXPECT_EQ(tick_instants, 2u);

    // The stream is a valid trace the CLI toolchain accepts end-to-end.
    TraceFile trace;
    trace.names = session.names();
    trace.records = records;
    EXPECT_TRUE(verify_trace(trace).empty());
}

TEST(SchedulerTelemetry, SameScriptedRunProducesIdenticalTraces) {
    Session a;
    Session b;
    const std::vector<Record> ra = record_scripted_run(a);
    const std::vector<Record> rb = record_scripted_run(b);
    TraceFile ta;
    ta.names = a.names();
    ta.records = ra;
    TraceFile tb;
    tb.names = b.names();
    tb.records = rb;
    EXPECT_TRUE(diff_traces(ta, tb).identical());
}

}  // namespace
}  // namespace alps::telemetry
