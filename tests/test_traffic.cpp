// Unit tests for the open-loop traffic subsystem: arrival-process
// statistics (Poisson mean/CV, MMPP burstiness, flash-crowd shape and
// determinism), heavy-tailed service draws (Pareto tail index via a
// log-log CCDF regression), and the SoA request table's slot-reuse and
// generation invariants. Run under ASan by check.sh like every tier-1
// test, which is what makes the table-reuse tests meaningful.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "traffic/arrival.h"
#include "traffic/generator.h"
#include "traffic/latency.h"
#include "traffic/service.h"
#include "traffic/table.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace alps::traffic {
namespace {

using util::Duration;
using util::msec;
using util::sec;
using util::TimePoint;
using util::usec;

// ----------------------------------------------------------------------------
// Arrival process

std::vector<TimePoint> draw_arrivals(const ArrivalConfig& cfg, std::uint64_t seed,
                                     Duration horizon) {
    ArrivalProcess proc(cfg, util::Rng(seed));
    std::vector<TimePoint> out;
    TimePoint t{};
    const TimePoint end = TimePoint{} + horizon;
    for (;;) {
        t = proc.next(t);
        if (t >= end) break;
        out.push_back(t);
    }
    return out;
}

TEST(Arrival, PoissonInterarrivalMeanAndCv) {
    ArrivalConfig cfg;
    cfg.base_rps = 200.0;
    const auto arrivals = draw_arrivals(cfg, 42, sec(200));  // ~40k draws
    ASSERT_GT(arrivals.size(), 30000u);
    util::RunningStats gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        gaps.add(util::to_sec(arrivals[i] - arrivals[i - 1]));
    }
    // Mean interarrival = 1/λ = 5 ms; an exponential's CV is 1.
    EXPECT_NEAR(gaps.mean(), 1.0 / 200.0, 0.0002);
    EXPECT_NEAR(gaps.stddev() / gaps.mean(), 1.0, 0.03);
}

TEST(Arrival, StrictlyIncreasingAndDeterministic) {
    ArrivalConfig cfg;
    cfg.base_rps = 500.0;
    cfg.diurnal.amplitude = 0.4;
    cfg.diurnal.period = sec(10);
    const auto a = draw_arrivals(cfg, 7, sec(20));
    const auto b = draw_arrivals(cfg, 7, sec(20));
    EXPECT_EQ(a, b);  // same seed, same stream, bit-identical
    for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
    const auto c = draw_arrivals(cfg, 8, sec(20));
    EXPECT_NE(a, c);  // different seed, different sample path
}

TEST(Arrival, MmppIsBurstierThanPoisson) {
    ArrivalConfig plain;
    plain.base_rps = 300.0;
    ArrivalConfig bursty = plain;
    bursty.burst.multiplier = 8.0;
    bursty.burst.mean_normal = msec(500);
    bursty.burst.mean_burst = msec(100);
    auto cv_of = [](const std::vector<TimePoint>& a) {
        util::RunningStats gaps;
        for (std::size_t i = 1; i < a.size(); ++i) {
            gaps.add(util::to_sec(a[i] - a[i - 1]));
        }
        return gaps.stddev() / gaps.mean();
    };
    const double cv_plain = cv_of(draw_arrivals(plain, 9, sec(120)));
    const double cv_bursty = cv_of(draw_arrivals(bursty, 9, sec(120)));
    EXPECT_NEAR(cv_plain, 1.0, 0.05);
    EXPECT_GT(cv_bursty, 1.3);  // interrupted Poisson: CV strictly above 1
}

TEST(Arrival, RateEnvelopeIsPureAndSeedIndependent) {
    ArrivalConfig cfg;
    cfg.base_rps = 100.0;
    cfg.diurnal.amplitude = 0.5;
    cfg.diurnal.period = sec(60);
    FlashCrowd spike;
    spike.start = TimePoint{} + sec(10);
    spike.ramp = sec(2);
    spike.hold = sec(5);
    spike.decay = sec(3);
    spike.multiplier = 6.0;
    cfg.spikes.push_back(spike);

    // The envelope is a pure function of config and time: no rng anywhere.
    for (int i = 0; i <= 40; ++i) {
        const TimePoint t = TimePoint{} + sec(1) * i;
        EXPECT_DOUBLE_EQ(rate_envelope(cfg, t), rate_envelope(cfg, t));
    }
    // Shape: quiet before the spike, ×multiplier during the hold, and the
    // bound dominates every instantaneous rate.
    const double before = rate_envelope(cfg, spike.start - sec(5));
    const double during = rate_envelope(cfg, spike.start + sec(4));
    EXPECT_GT(during, 4.0 * before);
    for (int i = 0; i <= 400; ++i) {
        const TimePoint t = TimePoint{} + msec(100) * i;
        EXPECT_LE(rate_envelope(cfg, t), rate_bound(cfg) + 1e-9);
    }
}

TEST(Arrival, FlashCrowdConcentratesArrivals) {
    ArrivalConfig cfg;
    cfg.base_rps = 100.0;
    FlashCrowd spike;
    spike.start = TimePoint{} + sec(20);
    spike.ramp = sec(1);
    spike.hold = sec(8);
    spike.decay = sec(1);
    spike.multiplier = 10.0;
    cfg.spikes.push_back(spike);

    // The spike window must see ~multiplier× the base arrival density,
    // whatever the seed: the envelope is deterministic, only the noise
    // around it varies.
    for (const std::uint64_t seed : {1ULL, 99ULL, 123456789ULL}) {
        const auto arrivals = draw_arrivals(cfg, seed, sec(40));
        std::uint64_t in_hold = 0, in_quiet = 0;
        const TimePoint h0 = spike.start + spike.ramp;
        const TimePoint h1 = h0 + spike.hold;
        for (const TimePoint t : arrivals) {
            if (t >= h0 && t < h1) ++in_hold;
            if (t >= TimePoint{} + sec(4) && t < TimePoint{} + sec(12)) ++in_quiet;
        }
        // Both windows are 8 s wide; hold runs at 1000 rps vs 100 rps.
        ASSERT_GT(in_quiet, 0u);
        const double ratio = static_cast<double>(in_hold) / static_cast<double>(in_quiet);
        EXPECT_NEAR(ratio, 10.0, 1.5) << "seed " << seed;
    }
}

// ----------------------------------------------------------------------------
// Service-time models

TEST(Service, ExponentialMatchesSeedModelDraw) {
    // The default model must reproduce the seed web model's draw exactly:
    // one rng.exponential(mean), floored at 10 µs.
    ServiceModel m;
    util::Rng a(5), b(5);
    for (int i = 0; i < 1000; ++i) {
        const Duration want = std::max(a.exponential(msec(4)), usec(10));
        EXPECT_EQ(m.draw(b, msec(4)), want);
    }
}

TEST(Service, ParetoTailIndexViaCcdfRegression) {
    ServiceModel m;
    m.kind = ServiceKind::kPareto;
    m.shape = 2.2;
    util::Rng rng(31);
    std::vector<double> xs;
    xs.reserve(200000);
    for (int i = 0; i < 200000; ++i) {
        xs.push_back(util::to_sec(m.draw(rng, msec(10))));
    }
    std::sort(xs.begin(), xs.end());
    // Empirical mean ≈ requested mean.
    EXPECT_NEAR(util::mean(xs), 0.010, 0.001);
    // On log-log axes the CCDF of a Pareto is a line of slope -α. Fit the
    // tail (top 10%, trimming the last few points where the empirical CCDF
    // gets noisy).
    std::vector<double> lx, ly;
    const std::size_t n = xs.size();
    for (std::size_t i = n - n / 10; i < n - 50; ++i) {
        lx.push_back(std::log(xs[i]));
        ly.push_back(std::log(static_cast<double>(n - i) / static_cast<double>(n)));
    }
    const util::LinearFit fit = util::linear_fit(lx, ly);
    EXPECT_NEAR(fit.slope, -2.2, 0.15);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Service, LognormalMeanAndFloor) {
    ServiceModel m;
    m.kind = ServiceKind::kLognormal;
    m.shape = 1.0;  // σ of log-space
    util::Rng rng(17);
    util::RunningStats s;
    Duration lo = sec(1);
    for (int i = 0; i < 100000; ++i) {
        const Duration d = m.draw(rng, msec(5));
        lo = std::min(lo, d);
        s.add(util::to_sec(d));
    }
    EXPECT_NEAR(s.mean(), 0.005, 0.0005);
    EXPECT_GE(lo, m.floor);
}

// ----------------------------------------------------------------------------
// Request table

TEST(Table, SlotsAreReusedWithoutGrowth) {
    RequestTable t;
    t.reserve(8);
    // Churn far more requests than live slots: the column arrays must not
    // grow past the high-water mark of concurrent in-flight rows.
    std::vector<ReqId> live;
    for (int round = 0; round < 1000; ++round) {
        while (live.size() < 8) {
            live.push_back(t.create(0, 0, TimePoint{} + usec(round)));
        }
        for (int i = 0; i < 5; ++i) {
            t.release(live.back());
            live.pop_back();
        }
    }
    EXPECT_EQ(t.rows(), 8u);
    EXPECT_EQ(t.peak_in_flight(), 8u);
    EXPECT_EQ(t.created() - t.released(), t.in_flight());
    EXPECT_EQ(t.in_flight(), live.size());
}

TEST(Table, GenerationsInvalidateStaleHandles) {
    RequestTable t;
    const ReqId a = t.create(3, 1, TimePoint{} + msec(1));
    EXPECT_TRUE(t.valid(a));
    EXPECT_EQ(t.site(a), 3u);
    EXPECT_EQ(t.klass(a), 1u);
    t.release(a);
    EXPECT_FALSE(t.valid(a));
    // The slot comes back with a bumped generation: the old handle stays
    // dead even though the storage is reused.
    const ReqId b = t.create(4, 0, TimePoint{} + msec(2));
    EXPECT_TRUE(t.valid(b));
    EXPECT_NE(a, b);
    EXPECT_FALSE(t.valid(a));
    EXPECT_FALSE(t.valid(kNoRequest));
}

TEST(Table, TimestampPipelinePerRow) {
    RequestTable t;
    const TimePoint t0 = TimePoint{} + msec(10);
    const ReqId id = t.create(0, 0, t0);
    EXPECT_EQ(t.arrival(id), t0);
    EXPECT_EQ(t.dispatch(id), t0);  // dispatch defaults to arrival
    EXPECT_EQ(t.db_wait(id), Duration::zero());
    t.set_dispatch(id, t0 + msec(3));
    t.add_db_wait(id, msec(20));
    t.add_db_wait(id, msec(30));
    EXPECT_EQ(t.dispatch(id) - t.arrival(id), msec(3));
    EXPECT_EQ(t.db_wait(id), msec(50));
    t.release(id);
    EXPECT_EQ(t.in_flight(), 0u);
}

TEST(Table, IdRingIsFifoAcrossGrowth) {
    IdRing ring;
    RequestTable t;
    std::vector<ReqId> ids;
    // Push through several doublings with interleaved pops to force the
    // wrap-around copy path.
    std::size_t popped = 0;
    for (int i = 0; i < 200; ++i) {
        ids.push_back(t.create(0, 0, TimePoint{} + usec(i)));
        ring.push(ids.back());
        if (i % 3 == 2) {
            EXPECT_EQ(ring.pop(), ids[popped++]);
        }
    }
    while (!ring.empty()) EXPECT_EQ(ring.pop(), ids[popped++]);
    EXPECT_EQ(popped, ids.size());
}

// ----------------------------------------------------------------------------
// Latency recorder

TEST(Latency, ExactQuantilesAndCounters) {
    LatencyRecorder rec(2);
    for (int i = 1; i <= 100; ++i) {
        rec.record(0, msec(i), msec(1), Duration::zero());
    }
    rec.record(1, msec(500), Duration::zero(), msec(400));
    rec.drop(0);
    rec.timeout(1);
    rec.note_queue_depth(0, 7);
    rec.note_queue_depth(0, 3);
    EXPECT_EQ(rec.completed(0), 100u);
    // Rank convention: index = q·(n−1)+0.5, so the even-count median takes
    // the upper of the two middle samples.
    EXPECT_EQ(rec.quantile(0, 0.5), msec(51));
    EXPECT_EQ(rec.quantile(0, 0.95), msec(95));
    EXPECT_EQ(rec.quantile(0, 0.99), msec(99));
    EXPECT_EQ(rec.drops(0), 1u);
    EXPECT_EQ(rec.timeouts(1), 1u);
    EXPECT_EQ(rec.max_queue_depth(0), 7u);
    EXPECT_EQ(rec.mean_queue_wait(0), msec(1));
    // Merged quantile spans both sites' samples.
    EXPECT_EQ(rec.quantile_of({0, 1}, 1.0), msec(500));
    EXPECT_EQ(rec.total_completed(), 101u);
}

// ----------------------------------------------------------------------------
// Derived streams

TEST(Streams, DerivedSeedsAreDistinctAndStable) {
    const std::uint64_t master = 11;
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t k = 0; k < 4096; ++k) {
        seeds.push_back(util::derive_stream_seed(master, k));
    }
    std::vector<std::uint64_t> uniq = seeds;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    EXPECT_EQ(uniq.size(), seeds.size());
    // Stable across calls (it is the persistence contract for BENCH seeds).
    EXPECT_EQ(util::derive_stream_seed(master, 0), util::derive_stream_seed(11, 0));
    EXPECT_NE(util::derive_stream_seed(master, 0), util::derive_stream_seed(12, 0));
}

}  // namespace
}  // namespace alps::traffic
