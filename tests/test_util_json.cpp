#include "util/json.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace alps::util {
namespace {

TEST(Json, ScalarsDump) {
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, DoublesShortestRoundTripWithTrailingPointZero) {
    EXPECT_EQ(Json(1.5).dump(), "1.5");
    EXPECT_EQ(Json(0.1).dump(), "0.1");
    // Whole-valued doubles keep a decimal marker so their type is stable.
    EXPECT_EQ(Json(3.0).dump(), "3.0");
    EXPECT_EQ(Json(0.0).dump(), "0.0");
    EXPECT_EQ(Json(-2.0).dump(), "-2.0");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
}

TEST(Json, StringEscaping) {
    EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
    EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
    EXPECT_EQ(Json("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(Json(std::string("ctl\x01")).dump(), "\"ctl\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
    Json obj = Json::object();
    obj.set("zebra", 1).set("apple", 2).set("mango", 3);
    EXPECT_EQ(obj.dump(0), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(Json, ObjectSetOverwritesInPlace) {
    Json obj = Json::object();
    obj.set("a", 1).set("b", 2).set("a", 9);
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.dump(0), "{\"a\":9,\"b\":2}");
}

TEST(Json, NestedPrettyPrint) {
    Json doc = Json::object();
    Json arr = Json::array();
    arr.push(1).push(2);
    doc.set("xs", std::move(arr));
    doc.set("empty_obj", Json::object());
    doc.set("empty_arr", Json::array());
    EXPECT_EQ(doc.dump(2),
              "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty_obj\": {},\n"
              "  \"empty_arr\": []\n}");
}

TEST(Json, DumpIsDeterministic) {
    const auto build = [] {
        Json doc = Json::object();
        doc.set("pi", 3.141592653589793).set("n", 12).set("name", "sweep");
        Json arr = Json::array();
        for (int i = 0; i < 4; ++i) arr.push(0.1 * i);
        doc.set("xs", std::move(arr));
        return doc.dump(2);
    };
    EXPECT_EQ(build(), build());
}

TEST(Json, TypeMisuseViolatesContract) {
    Json scalar(1);
    EXPECT_THROW(scalar.set("k", 1), util::ContractViolation);
    EXPECT_THROW(scalar.push(1), util::ContractViolation);
    Json obj = Json::object();
    EXPECT_THROW(obj.push(1), util::ContractViolation);
}

}  // namespace
}  // namespace alps::util
