#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.h"
#include "util/stats.h"

namespace alps::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBounds) {
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniform_int(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, UniformIntDegenerateRange) {
    Rng r(1);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntInvertedBoundsViolateContract) {
    Rng r(1);
    EXPECT_THROW(r.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformIntRoughlyUniform) {
    Rng r(42);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(r.uniform_int(0, 9))];
    for (int c : counts) {
        EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
    }
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng r(77);
    const Duration mean = msec(10);
    RunningStats s;
    for (int i = 0; i < 200000; ++i) {
        s.add(to_ms(r.exponential(mean)));
    }
    EXPECT_NEAR(s.mean(), 10.0, 0.15);
    // Exponential: stddev == mean.
    EXPECT_NEAR(s.stddev(), 10.0, 0.25);
}

TEST(Rng, ExponentialNonNegative) {
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_GE(r.exponential(msec(5)).count(), 0);
    }
}

TEST(Rng, ExponentialZeroMeanViolatesContract) {
    Rng r(3);
    EXPECT_THROW(r.exponential(Duration::zero()), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(5);
    Rng b = a.split();
    // The split stream differs from the parent's continuation.
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        if (a.next_u64() != b.next_u64()) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace alps::util
