#include "util/shares.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace alps::util {
namespace {

TEST(Shares, GcdOfEmptyIsZero) { EXPECT_EQ(shares_gcd({}), 0); }

TEST(Shares, GcdBasic) {
    const std::vector<Share> s{6, 9, 12};
    EXPECT_EQ(shares_gcd(s), 3);
}

TEST(Shares, GcdCoprime) {
    const std::vector<Share> s{5, 7};
    EXPECT_EQ(shares_gcd(s), 1);
}

TEST(Shares, ScaleByGcdDividesThrough) {
    const std::vector<Share> s{10, 20, 30};
    EXPECT_EQ(scale_by_gcd(s), (std::vector<Share>{1, 2, 3}));
}

TEST(Shares, ScaleByGcdIdentityWhenCoprime) {
    const std::vector<Share> s{2, 3, 5};
    EXPECT_EQ(scale_by_gcd(s), s);
}

TEST(Shares, PaperCycleExample) {
    // §2.1: shares n, 2n, 3n -> scaled {1,2,3} -> cycle length 6Q.
    const std::vector<Share> s{4, 8, 12};
    const auto scaled = scale_by_gcd(s);
    EXPECT_EQ(total_shares(scaled), 6);
}

TEST(Shares, NonPositiveShareViolatesContract) {
    const std::vector<Share> s{1, 0};
    EXPECT_THROW((void)total_shares(s), ContractViolation);
    EXPECT_THROW((void)shares_gcd(s), ContractViolation);
}

TEST(Shares, IdealFractionsSumToOne) {
    const std::vector<Share> s{1, 2, 3};
    const auto f = ideal_fractions(s);
    EXPECT_DOUBLE_EQ(f[0], 1.0 / 6.0);
    EXPECT_DOUBLE_EQ(f[1], 2.0 / 6.0);
    EXPECT_DOUBLE_EQ(f[2], 3.0 / 6.0);
    EXPECT_DOUBLE_EQ(f[0] + f[1] + f[2], 1.0);
}

}  // namespace
}  // namespace alps::util
