#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/assert.h"

namespace alps::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
    RunningStats s;
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    for (double x : xs) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, NegativeValues) {
    RunningStats s;
    s.add(-10.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, MinOnEmptyViolatesContract) {
    RunningStats s;
    EXPECT_THROW((void)s.min(), ContractViolation);
    EXPECT_THROW((void)s.max(), ContractViolation);
}

TEST(Rms, EmptyIsZero) { EXPECT_DOUBLE_EQ(rms({}), 0.0); }

TEST(Rms, MatchesHandComputation) {
    const std::vector<double> v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(rms(v), std::sqrt(12.5));
}

TEST(RmsRelativeError, PerfectMatchIsZero) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(rms_relative_error(a, a), 0.0);
}

TEST(RmsRelativeError, KnownValue) {
    // errors: (1.1-1)/1 = .1 and (1.8-2)/2 = -.1 -> RMS = .1
    const std::vector<double> actual{1.1, 1.8};
    const std::vector<double> ideal{1.0, 2.0};
    EXPECT_NEAR(rms_relative_error(actual, ideal), 0.1, 1e-12);
}

TEST(RmsRelativeError, SkipsZeroIdealEntries) {
    const std::vector<double> actual{5.0, 1.1};
    const std::vector<double> ideal{0.0, 1.0};
    EXPECT_NEAR(rms_relative_error(actual, ideal), 0.1, 1e-9);
}

TEST(RmsRelativeError, MismatchedSizesViolateContract) {
    const std::vector<double> a{1.0};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_THROW((void)rms_relative_error(a, b), ContractViolation);
}

TEST(LinearFit, ExactLine) {
    const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
    const LinearFit fit = linear_fit(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
    std::vector<double> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back(i);
        y.push_back(0.5 * i + 2.0 + ((i % 2 == 0) ? 0.1 : -0.1));
    }
    const LinearFit fit = linear_fit(x, y);
    EXPECT_NEAR(fit.slope, 0.5, 1e-3);
    EXPECT_NEAR(fit.intercept, 2.0, 0.05);
    EXPECT_GT(fit.r_squared, 0.999);
}

TEST(LinearFit, ConstantYHasZeroSlopeAndPerfectFit) {
    const std::vector<double> x{1.0, 2.0, 3.0};
    const std::vector<double> y{4.0, 4.0, 4.0};
    const LinearFit fit = linear_fit(x, y);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 4.0);
    EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LinearFit, DegenerateXViolatesContract) {
    const std::vector<double> x{2.0, 2.0};
    const std::vector<double> y{1.0, 3.0};
    EXPECT_THROW((void)linear_fit(x, y), ContractViolation);
}

TEST(LinearFit, FewerThanTwoPointsViolatesContract) {
    const std::vector<double> x{1.0};
    const std::vector<double> y{1.0};
    EXPECT_THROW((void)linear_fit(x, y), ContractViolation);
}

TEST(Mean, Basic) {
    const std::vector<double> v{1.0, 2.0, 6.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace alps::util
