#include "util/table.h"

#include <gtest/gtest.h>

#include "util/assert.h"

namespace alps::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
    TextTable t({"name", "x"});
    t.add_row({"a", "1.5"});
    t.add_row({"longer", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name   | x   |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 2   |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
    TextTable t({"a", "b"});
    t.add_row({"1", "2"});
    t.add_row({"3", "4"});
    EXPECT_EQ(t.render_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TextTable, RowArityMismatchViolatesContract) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, CellsWithCommasRejected) {
    TextTable t({"a"});
    EXPECT_THROW(t.add_row({"1,2"}), ContractViolation);
}

TEST(TextTable, EmptyHeadersViolateContract) {
    EXPECT_THROW(TextTable({}), ContractViolation);
}

TEST(Fmt, RoundsToRequestedDecimals) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
    EXPECT_EQ(fmt(2.0, 3), "2.000");
}

}  // namespace
}  // namespace alps::util
