#include "util/time.h"

#include <gtest/gtest.h>

namespace alps::util {
namespace {

TEST(Time, UnitConstructors) {
    EXPECT_EQ(nsec(5).count(), 5);
    EXPECT_EQ(usec(5).count(), 5'000);
    EXPECT_EQ(msec(5).count(), 5'000'000);
    EXPECT_EQ(sec(5).count(), 5'000'000'000);
}

TEST(Time, Conversions) {
    EXPECT_DOUBLE_EQ(to_sec(sec(2)), 2.0);
    EXPECT_DOUBLE_EQ(to_ms(msec(7)), 7.0);
    EXPECT_DOUBLE_EQ(to_us(usec(9)), 9.0);
}

TEST(Time, FromFractionalMicroseconds) {
    EXPECT_EQ(from_us(17.4).count(), 17'400);
    EXPECT_EQ(from_us(1.1).count(), 1'100);
    EXPECT_EQ(from_us(0.0).count(), 0);
}

TEST(TimePoint, ArithmeticAndOrdering) {
    const TimePoint t0{};
    const TimePoint t1 = t0 + msec(10);
    EXPECT_LT(t0, t1);
    EXPECT_EQ(t1 - t0, msec(10));
    EXPECT_EQ(t1 - msec(10), t0);
    TimePoint t = t0;
    t += msec(3);
    EXPECT_EQ(t.since_epoch, msec(3));
    EXPECT_EQ(msec(2) + t0, t0 + msec(2));
}

}  // namespace
}  // namespace alps::util
