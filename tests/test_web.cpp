#include <gtest/gtest.h>

#include <iostream>
#include <memory>

#include "os/kernel.h"
#include "sim/engine.h"
#include "util/assert.h"
#include "web/clients.h"
#include "web/experiment.h"
#include "web/site.h"

namespace alps::web {
namespace {

using util::msec;
using util::sec;
using util::TimePoint;

struct Host {
    sim::Engine engine;
    os::Kernel kernel{engine};
    void run_for(util::Duration d) { engine.run_until(engine.now() + d); }
};

SiteConfig small_site() {
    SiteConfig cfg;
    cfg.name = "s";
    cfg.uid = 500;
    cfg.max_workers = 8;
    cfg.initial_workers = 2;
    cfg.jitter = false;  // deterministic service demands for unit tests
    return cfg;
}

TEST(WebSite, SpawnsInitialWorkersAndMaster) {
    Host h;
    WebSite site(h.kernel, small_site());
    EXPECT_EQ(site.worker_count(), 2);
    // 2 workers + 1 master belong to the site's uid.
    EXPECT_EQ(h.kernel.pids_of_uid(500).size(), 3u);
}

TEST(WebSite, ServesOneRequest) {
    Host h;
    WebSite site(h.kernel, small_site());
    h.run_for(msec(10));
    bool done = false;
    util::Duration response{};
    site.set_completion_hook([&](util::Duration r) {
        done = true;
        response = r;
    });
    EXPECT_TRUE(site.submit());
    h.run_for(sec(1));
    EXPECT_TRUE(done);
    EXPECT_EQ(site.completed(), 1u);
    // parse 4 ms + db 50 ms + render 6 ms = 60 ms on an idle host.
    EXPECT_GE(response, msec(60));
    EXPECT_LT(response, msec(80));
    // The latency pipeline saw the same request: dispatched immediately
    // (no queue wait), one DB round trip, full response recorded.
    EXPECT_EQ(site.recorder().completed(0), 1u);
    EXPECT_EQ(site.recorder().mean_queue_wait(0), util::Duration::zero());
    const util::Duration p50 = site.recorder().quantile(0, 0.5);
    EXPECT_GE(p50, response - util::usec(1));  // µs-resolution sample
    EXPECT_LE(p50, response + util::usec(1));
    EXPECT_EQ(site.table().in_flight(), 0u);  // row released at completion
}

TEST(WebSite, RequestsQueueWhenWorkersBusy) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.initial_workers = 1;
    cfg.min_spare = 0;  // no pool growth
    WebSite site(h.kernel, cfg);
    h.run_for(msec(10));
    int done = 0;
    site.set_completion_hook([&](util::Duration) { ++done; });
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(site.submit());
    EXPECT_GE(site.queue_length(), 4u);  // one taken by the lone worker
    EXPECT_EQ(site.table().in_flight(), 5u);
    h.run_for(sec(2));
    EXPECT_EQ(done, 5);  // all served sequentially
    // Queued requests waited measurably longer than the first.
    EXPECT_GT(site.recorder().quantile(0, 0.99), site.recorder().quantile(0, 0.01));
}

TEST(WebSite, BacklogCapDropsAtTheDoor) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.initial_workers = 1;
    cfg.min_spare = 0;
    cfg.max_backlog = 3;
    WebSite site(h.kernel, cfg);
    h.run_for(msec(10));
    int accepted = 0;
    for (int i = 0; i < 10; ++i) accepted += site.submit() ? 1 : 0;
    // 1 in service + 3 queued; the rest bounced.
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(site.drops(), 6u);
    h.run_for(sec(2));
    EXPECT_EQ(site.completed(), 4u);
}

TEST(WebSite, QueueDeadlineShedsStaleRequests) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.initial_workers = 1;
    cfg.min_spare = 0;
    cfg.queue_timeout = msec(80);  // ~one 60 ms request deep
    WebSite site(h.kernel, cfg);
    h.run_for(msec(10));
    for (int i = 0; i < 6; ++i) EXPECT_TRUE(site.submit());
    h.run_for(sec(2));
    // The head-of-line request and its immediate successor clear the 80 ms
    // deadline; deeper ones are shed at pickup and released from the table.
    EXPECT_GT(site.timeouts(), 0u);
    EXPECT_EQ(site.completed() + site.timeouts(), 6u);
    EXPECT_EQ(site.table().in_flight(), 0u);
}

TEST(WebSite, MasterGrowsPoolUnderLoad) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.initial_workers = 2;
    cfg.min_spare = 2;
    cfg.spawn_batch = 2;
    WebSite site(h.kernel, cfg);
    ClientConfig cc;
    cc.count = 30;
    cc.think_mean = msec(200);
    ClientPool clients(h.engine, site, cc);
    h.run_for(sec(10));
    EXPECT_GT(site.worker_count(), 2);
    EXPECT_LE(site.worker_count(), cfg.max_workers);
    EXPECT_GT(site.completed(), 50u);
}

TEST(WebSite, MasterRetiresIdleWorkers) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.initial_workers = 2;
    cfg.max_spare = 1;
    WebSite site(h.kernel, cfg);
    // Grow the pool with a burst, then let it idle.
    ClientConfig cc;
    cc.count = 30;
    cc.think_mean = msec(100);
    {
        // Clients keep submitting for the pool to grow...
        ClientPool clients(h.engine, site, cc);
        h.run_for(sec(6));
    }
    const int peak = site.worker_count();
    EXPECT_GT(peak, 2);
    // ... the pool keeps shrinking once load stops (the ClientPool object is
    // gone but its pending callbacks complete; think timers stop firing when
    // destroyed? they do not — so instead verify shrink over a long quiet
    // stretch relative to the peak).
    h.run_for(sec(60));
    EXPECT_LT(site.worker_count(), peak);
}

TEST(WebSite, PerSecondCompletionsCoverRun) {
    Host h;
    WebSite site(h.kernel, small_site());
    ClientConfig cc;
    cc.count = 10;
    cc.think_mean = msec(500);
    ClientPool clients(h.engine, site, cc);
    h.run_for(sec(5));
    const auto& per_sec = site.per_second_completions();
    ASSERT_GE(per_sec.size(), 4u);
    std::uint64_t total = 0;
    for (auto c : per_sec) total += c;
    EXPECT_EQ(total, site.completed());
}

TEST(WebSite, LegacyFieldsSynthesizeOneClass) {
    Host h;
    WebSite site(h.kernel, small_site());
    ASSERT_EQ(site.request_mix().size(), 1u);
    const auto& phases = site.request_mix()[0].phases;
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_FALSE(phases[0].db);
    EXPECT_TRUE(phases[1].db);
    EXPECT_FALSE(phases[2].db);
}

TEST(WebSite, BulletinBoardMixShape) {
    const auto mix = bulletin_board_mix(0.2);
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_EQ(mix[0].name, "read-story");
    EXPECT_NEAR(mix[0].weight, 0.8, 1e-12);
    EXPECT_EQ(mix[1].name, "submit-comment");
    // The submission path has two DB round trips.
    int db_phases = 0;
    for (const auto& ph : mix[1].phases) db_phases += ph.db ? 1 : 0;
    EXPECT_EQ(db_phases, 2);
    EXPECT_THROW(bulletin_board_mix(1.0), util::ContractViolation);
    EXPECT_THROW(bulletin_board_mix(-0.1), util::ContractViolation);
}

TEST(WebSite, MixedRequestsCompleteInProportion) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.classes = bulletin_board_mix(0.25);
    cfg.max_workers = 10;
    cfg.initial_workers = 4;
    WebSite site(h.kernel, cfg);
    ClientConfig cc;
    cc.count = 20;
    cc.think_mean = msec(300);
    ClientPool clients(h.engine, site, cc);
    h.run_for(sec(30));
    const auto& by_class = site.completed_by_class();
    ASSERT_EQ(by_class.size(), 2u);
    const auto total = by_class[0] + by_class[1];
    ASSERT_GT(total, 500u);
    EXPECT_EQ(total, site.completed());
    // ~25% submissions (statistical).
    const double frac = static_cast<double>(by_class[1]) / static_cast<double>(total);
    EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(WebSite, MultiPhaseRequestServiceTime) {
    Host h;
    SiteConfig cfg = small_site();
    cfg.jitter = false;
    cfg.classes = {{"multi", 1.0,
                    {{false, msec(2)}, {true, msec(20)}, {false, msec(1)},
                     {true, msec(20)}, {false, msec(1)}}}};
    WebSite site(h.kernel, cfg);
    h.run_for(msec(10));
    util::Duration response{};
    site.set_completion_hook([&](util::Duration r) { response = r; });
    EXPECT_TRUE(site.submit());
    h.run_for(sec(1));
    EXPECT_EQ(site.completed(), 1u);
    // 2+1+1 ms CPU + 2x20 ms DB = 44 ms on an idle host.
    EXPECT_GE(response, msec(44));
    EXPECT_LT(response, msec(60));
}

TEST(WebSite, InvalidMixViolatesContract) {
    Host h;
    SiteConfig bad = small_site();
    bad.classes = {{"empty", 1.0, {}}};
    EXPECT_THROW(WebSite(h.kernel, bad), util::ContractViolation);
    bad.classes = {{"zero-weight", 0.0, {{false, msec(1)}}}};
    EXPECT_THROW(WebSite(h.kernel, bad), util::ContractViolation);
    bad.classes = {{"zero-phase", 1.0, {{false, util::Duration::zero()}}}};
    EXPECT_THROW(WebSite(h.kernel, bad), util::ContractViolation);
}

TEST(WebSite, ContractViolations) {
    Host h;
    SiteConfig bad = small_site();
    bad.initial_workers = 0;
    EXPECT_THROW(WebSite(h.kernel, bad), util::ContractViolation);
    // A shared recorder must be sized past the site's row index.
    traffic::LatencyRecorder tiny(1);
    SiteConfig shared = small_site();
    shared.site_index = 3;
    EXPECT_THROW(WebSite(h.kernel, shared, nullptr, &tiny),
                 util::ContractViolation);
}

// ----------------------------------------------------------------------------
// The Section-5 experiment

TEST(WebExperiment, KernelAloneSharesRoughlyEvenly) {
    WebExperimentConfig cfg;
    cfg.use_alps = false;
    cfg.warmup = sec(5);
    cfg.measure = sec(20);
    const WebExperimentResult r = run_web_experiment(cfg);
    std::cout << "kernel-only: " << r.throughput_rps[0] << " " << r.throughput_rps[1]
              << " " << r.throughput_rps[2] << " req/s\n";
    const double total = r.throughput_rps[0] + r.throughput_rps[1] + r.throughput_rps[2];
    ASSERT_GT(total, 50.0);
    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(r.throughput_rps[static_cast<std::size_t>(i)] / total, 1.0 / 3.0,
                    0.06);
    }
    EXPECT_GT(r.cpu_utilization, 0.95);  // the CPU is the bottleneck (paper §5)
}

TEST(WebExperiment, AlpsEnforcesOneTwoThree) {
    WebExperimentConfig cfg;
    cfg.use_alps = true;
    cfg.warmup = sec(5);
    cfg.measure = sec(30);
    const WebExperimentResult r = run_web_experiment(cfg);
    std::cout << "ALPS {1,2,3}: " << r.throughput_rps[0] << " " << r.throughput_rps[1]
              << " " << r.throughput_rps[2] << " req/s, overhead "
              << r.alps_overhead_fraction * 100 << "%\n";
    const double total = r.throughput_rps[0] + r.throughput_rps[1] + r.throughput_rps[2];
    ASSERT_GT(total, 50.0);
    EXPECT_NEAR(r.throughput_rps[0] / total, 1.0 / 6.0, 0.04);
    EXPECT_NEAR(r.throughput_rps[1] / total, 2.0 / 6.0, 0.04);
    EXPECT_NEAR(r.throughput_rps[2] / total, 3.0 / 6.0, 0.04);
    // "acceptable accuracy and overhead" — 100 ms quantum keeps it tiny.
    EXPECT_LT(r.alps_overhead_fraction, 0.01);
}

TEST(WebExperiment, AlpsCostsLittleTotalThroughput) {
    WebExperimentConfig base;
    base.warmup = sec(5);
    base.measure = sec(20);
    base.use_alps = false;
    const auto off = run_web_experiment(base);
    base.use_alps = true;
    const auto on = run_web_experiment(base);
    const double t_off =
        off.throughput_rps[0] + off.throughput_rps[1] + off.throughput_rps[2];
    const double t_on = on.throughput_rps[0] + on.throughput_rps[1] + on.throughput_rps[2];
    // The paper's measured totals: 99 req/s without ALPS, 106 with; ours
    // should agree within ~15% of each other.
    EXPECT_NEAR(t_on / t_off, 1.0, 0.15);
}

TEST(WebExperiment, ShareDistributionIsConfigurable) {
    WebExperimentConfig cfg;
    cfg.shares = {1, 1, 4};
    cfg.warmup = sec(5);
    cfg.measure = sec(30);
    const WebExperimentResult r = run_web_experiment(cfg);
    const double total = r.throughput_rps[0] + r.throughput_rps[1] + r.throughput_rps[2];
    EXPECT_NEAR(r.throughput_rps[0] / total, 1.0 / 6.0, 0.05);
    EXPECT_NEAR(r.throughput_rps[1] / total, 1.0 / 6.0, 0.05);
    EXPECT_NEAR(r.throughput_rps[2] / total, 4.0 / 6.0, 0.05);
}

}  // namespace
}  // namespace alps::web
