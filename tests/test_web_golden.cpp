// The §5 web-experiment golden: the rebuilt traffic/web stack must
// reproduce the seed closed-loop experiment's JSON bit-identically (3
// bulletin-board sites, 325 clients each, kernel-only and ALPS 1:2:3).
//
// The fixture was captured from the pre-rebuild web model, so this test is
// the compatibility contract for the whole chain: ClientPool ->
// traffic::Generator (closed-loop mode) -> WebSite on the SoA request
// table. Any change to an rng draw site, a draw order, or an event
// scheduling order in that chain shows up here as a diff.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"
#include "web/experiment.h"

namespace alps::web {
namespace {

util::Json result_json(const WebExperimentResult& r) {
    util::Json j = util::Json::object();
    util::Json tput = util::Json::array();
    util::Json resp = util::Json::array();
    util::Json done = util::Json::array();
    util::Json workers = util::Json::array();
    for (int i = 0; i < 3; ++i) {
        const auto k = static_cast<std::size_t>(i);
        tput.push(r.throughput_rps[k]);
        resp.push(r.mean_response_s[k]);
        done.push(r.completed[k]);
        workers.push(r.workers[k]);
    }
    j.set("throughput_rps", std::move(tput));
    j.set("mean_response_s", std::move(resp));
    j.set("completed", std::move(done));
    j.set("workers", std::move(workers));
    j.set("alps_overhead_fraction", r.alps_overhead_fraction);
    j.set("cpu_utilization", r.cpu_utilization);
    return j;
}

TEST(WebGolden, Section5ExperimentIsBitIdenticalToSeed) {
    util::Json doc = util::Json::object();
    {
        WebExperimentConfig cfg;
        cfg.use_alps = false;
        doc.set("kernel_only", result_json(run_web_experiment(cfg)));
    }
    {
        WebExperimentConfig cfg;
        cfg.use_alps = true;
        doc.set("alps_1_2_3", result_json(run_web_experiment(cfg)));
    }
    std::string ours = doc.dump(2);
    ours += "\n";

    const std::string path = std::string(ALPS_GOLDEN_DIR) + "/web_section5.golden";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing golden fixture: " << path;
    std::ostringstream golden;
    golden << in.rdbuf();

    EXPECT_EQ(golden.str(), ours)
        << "the rebuilt web stack no longer reproduces the seed Section-5 "
           "experiment bit-identically";
}

}  // namespace
}  // namespace alps::web
