// Tests for the web_scale cluster experiment (src/web/cluster.*): result
// determinism, flash-crowd membership, the pinned-process exemption from
// idle-steal/rebalance under the per-core deployment, share-driven
// protection, and jobs-independence of the registered sweep.
#include <gtest/gtest.h>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "harness/sink.h"
#include "web/cluster.h"

namespace alps {
namespace {

/// Small enough to run in well under a second, large enough that the flash
/// crowd saturates the machine: 32 sites x 8 rps x 5 ms = 1.28 s/s of CPU on
/// 4 cores steady (32%), plus 4 member sites at x8 during the spike.
web::WebScaleConfig small_config() {
    web::WebScaleConfig cfg;
    cfg.sites = 32;
    cfg.ncpus = 4;
    cfg.base_rps = 8.0;
    cfg.quantum = util::msec(10);
    cfg.warmup = util::sec(2);
    cfg.measure = util::sec(12);
    cfg.flash_start = util::sec(4);
    cfg.flash_ramp = util::sec(1);
    cfg.flash_hold = util::sec(5);
    cfg.flash_decay = util::sec(1);
    cfg.seed = 77;
    return cfg;
}

void expect_identical(const web::WebScaleResult& a, const web::WebScaleResult& b) {
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.peak_in_flight, b.peak_in_flight);
    EXPECT_EQ(a.flash_sites, b.flash_sites);
    EXPECT_EQ(a.protected_p50_ms, b.protected_p50_ms);
    EXPECT_EQ(a.protected_p95_ms, b.protected_p95_ms);
    EXPECT_EQ(a.protected_p99_ms, b.protected_p99_ms);
    EXPECT_EQ(a.flash_p99_ms, b.flash_p99_ms);
    EXPECT_EQ(a.steady_p99_ms, b.steady_p99_ms);
    EXPECT_EQ(a.protected_rps, b.protected_rps);
    EXPECT_EQ(a.total_rps, b.total_rps);
    EXPECT_EQ(a.cpu_utilization, b.cpu_utilization);
    EXPECT_EQ(a.overhead_fraction, b.overhead_fraction);
    EXPECT_EQ(a.boundaries_missed, b.boundaries_missed);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.steals, b.steals);
}

TEST(WebScale, ResultIsDeterministic) {
    // Bitwise, not approximate: every arrival, service draw, and percentile
    // derives from (seed, site index) alone.
    auto cfg = small_config();
    cfg.deploy = web::Deploy::kPerCoreAlps;
    const auto a = web::run_web_scale_experiment(cfg);
    const auto b = web::run_web_scale_experiment(cfg);
    EXPECT_GT(a.arrivals, 1000u);
    EXPECT_GT(a.completed, 0u);
    expect_identical(a, b);
}

TEST(WebScale, FlashMembershipIsOneSitePerCorePerMemberRow) {
    // Rows r = i/ncpus with r % stride == 1 spike: 32 sites / 4 cpus =
    // 8 rows, stride 8 selects row 1 only -> 4 member sites, and site 0
    // (row 0, the protected site) is never one of them.
    auto cfg = small_config();
    cfg.deploy = web::Deploy::kKernelOnly;
    const auto r = web::run_web_scale_experiment(cfg);
    EXPECT_EQ(r.flash_sites, 4);

    auto off = cfg;
    off.flash_multiplier = 0.0;
    EXPECT_EQ(web::run_web_scale_experiment(off).flash_sites, 0);
}

TEST(WebScale, PinnedDeploymentNeverStealsOrMigrates) {
    // The per-core deployment hard-pins every site process and driver
    // (Proc::pinned); the kernel's idle-steal and rebalance must leave all
    // of them alone even while flash-crowd cores run deep queues next to
    // idle neighbors. The unpinned kernel-only run on the same traffic is
    // the control proving those paths would otherwise fire.
    auto cfg = small_config();
    cfg.deploy = web::Deploy::kPerCoreAlps;
    const auto pinned = web::run_web_scale_experiment(cfg);
    EXPECT_EQ(pinned.steals, 0u);
    EXPECT_EQ(pinned.migrations, 0u);

    cfg.deploy = web::Deploy::kKernelOnly;
    const auto unpinned = web::run_web_scale_experiment(cfg);
    EXPECT_GT(unpinned.steals + unpinned.migrations, 0u);
}

TEST(WebScale, ProtectionFollowsTheShare) {
    // Revoking site A's purchase (share 8 -> 1) with identical traffic and
    // placement must cost it at least 2x in p99 during the overload.
    auto cfg = small_config();
    cfg.deploy = web::Deploy::kPerCoreAlps;
    const auto bought = web::run_web_scale_experiment(cfg);

    auto revoked = cfg;
    revoked.protected_share = 1;
    const auto free_tier = web::run_web_scale_experiment(revoked);
    EXPECT_GT(free_tier.protected_p99_ms, 2.0 * bought.protected_p99_ms)
        << "share 8 p99 " << bought.protected_p99_ms << " ms vs share 1 p99 "
        << free_tier.protected_p99_ms << " ms";
}

TEST(WebScale, SweepIsJobsIndependent) {
    // The registered experiment's JSON payload must be byte-identical
    // whether its tasks run serially or race across three workers.
    bench::register_all_experiments();
    const harness::Experiment* e =
        harness::ExperimentRegistry::instance().find("web_scale");
    ASSERT_NE(e, nullptr);
    harness::SweepOptions options;
    options.seed = 0x3b5;
    options.quiet = true;
    // One machine, headline intensity only: 5 points instead of 9.
    options.flash_crowd = 8.0;
    options.jobs = 1;
    const auto serial = harness::run_sweep(*e, options, nullptr);
    options.jobs = 3;
    const auto parallel = harness::run_sweep(*e, options, nullptr);
    EXPECT_EQ(serial.task_errors, 0);
    EXPECT_EQ(harness::report_to_json(serial, /*include_run=*/false).dump(2),
              harness::report_to_json(parallel, /*include_run=*/false).dump(2));
}

}  // namespace
}  // namespace alps
