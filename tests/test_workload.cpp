#include <gtest/gtest.h>

#include <numeric>

#include "util/assert.h"
#include "workload/distributions.h"
#include "workload/experiments.h"

namespace alps::workload {
namespace {

using util::msec;
using util::Share;

// ----------------------------------------------------------------------------
// Table-2 distributions

TEST(Distributions, LinearMatchesPaper) {
    EXPECT_EQ(make_shares(ShareModel::kLinear, 5), (std::vector<Share>{1, 3, 5, 7, 9}));
    const auto l10 = make_shares(ShareModel::kLinear, 10);
    EXPECT_EQ(l10.front(), 1);
    EXPECT_EQ(l10.back(), 19);
    EXPECT_EQ(make_shares(ShareModel::kLinear, 20).back(), 39);
}

TEST(Distributions, EqualMatchesPaper) {
    EXPECT_EQ(make_shares(ShareModel::kEqual, 5), (std::vector<Share>(5, 5)));
    EXPECT_EQ(make_shares(ShareModel::kEqual, 20), (std::vector<Share>(20, 20)));
}

TEST(Distributions, SkewedMatchesPaper) {
    EXPECT_EQ(make_shares(ShareModel::kSkewed, 5),
              (std::vector<Share>{1, 1, 1, 1, 21}));
    const auto s10 = make_shares(ShareModel::kSkewed, 10);
    EXPECT_EQ(std::count(s10.begin(), s10.end(), 1), 9);
    EXPECT_EQ(s10.back(), 91);
    EXPECT_EQ(make_shares(ShareModel::kSkewed, 20).back(), 381);
}

class TotalSharesTest
    : public ::testing::TestWithParam<std::tuple<ShareModel, int>> {};

TEST_P(TotalSharesTest, TotalIsNSquared) {
    const auto [model, n] = GetParam();
    const auto shares = make_shares(model, n);
    EXPECT_EQ(shares.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), Share{0}),
              static_cast<Share>(n) * n);
    for (const Share s : shares) EXPECT_GT(s, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotalSharesTest,
    ::testing::Combine(::testing::Values(ShareModel::kLinear, ShareModel::kEqual,
                                         ShareModel::kSkewed),
                       ::testing::Values(2, 3, 5, 10, 20, 50)));

TEST(Distributions, TooFewProcessesViolatesContract) {
    EXPECT_THROW(make_shares(ShareModel::kLinear, 1), util::ContractViolation);
    EXPECT_THROW(make_shares(ShareModel::kEqual, 0), util::ContractViolation);
}

// ----------------------------------------------------------------------------
// Experiment runners: structure and contracts

TEST(CpuBoundExperiment, ReportsConsistentCounters) {
    SimRunConfig cfg;
    cfg.shares = {1, 2};
    cfg.measure_cycles = 10;
    cfg.warmup_cycles = 2;
    const SimRunResult r = run_cpu_bound_experiment(cfg);
    EXPECT_FALSE(r.timed_out);
    EXPECT_GE(r.cycles_completed, 12u);
    EXPECT_GT(r.ticks, r.cycles_completed);
    EXPECT_GT(r.measurements, 0u);
    EXPECT_GT(r.wall, util::Duration::zero());
    EXPECT_GT(r.alps_cpu, util::Duration::zero());
    EXPECT_NEAR(r.overhead_fraction,
                util::to_sec(r.alps_cpu) / util::to_sec(r.wall), 1e-9);
}

TEST(CpuBoundExperiment, DeterministicAcrossRuns) {
    SimRunConfig cfg;
    cfg.shares = {1, 3, 5};
    cfg.measure_cycles = 20;
    const SimRunResult a = run_cpu_bound_experiment(cfg);
    const SimRunResult b = run_cpu_bound_experiment(cfg);
    EXPECT_EQ(a.mean_rms_error, b.mean_rms_error);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.measurements, b.measurements);
    EXPECT_EQ(a.alps_cpu, b.alps_cpu);
}

TEST(CpuBoundExperiment, TinyWallCapTimesOut) {
    SimRunConfig cfg;
    cfg.shares = {5, 5};
    cfg.measure_cycles = 1000;
    cfg.max_wall = msec(300);
    const SimRunResult r = run_cpu_bound_experiment(cfg);
    EXPECT_TRUE(r.timed_out);
    EXPECT_LE(r.wall, msec(300));
}

TEST(CpuBoundExperiment, EmptySharesViolateContract) {
    SimRunConfig cfg;
    EXPECT_THROW((void)run_cpu_bound_experiment(cfg), util::ContractViolation);
}

TEST(IoExperiment, OnsetPredictionMatchesConfig) {
    IoRunConfig cfg;
    cfg.steady_cycles = 25;
    cfg.observe_cycles = 10;
    const IoRunResult r = run_io_experiment(cfg);
    // B consumes shares[1] quanta per cycle; the initial CPU phase is
    // steady_cycles of that plus one burst.
    EXPECT_NEAR(static_cast<double>(r.io_onset_cycle), 25.0 + 4.0, 2.0);
    EXPECT_EQ(r.cycle_index.size(), r.fractions.size());
    EXPECT_GE(r.fractions.size(), 30u);
}

TEST(MultiAlpsExperiment, ShapeOfResult) {
    MultiAlpsConfig cfg;
    cfg.phase2_start = util::sec(2);
    cfg.phase3_start = util::sec(4);
    cfg.end = util::sec(8);
    const MultiAlpsResult r = run_multi_alps_experiment(cfg);
    ASSERT_EQ(r.procs.size(), 9u);
    // Group A has all three phases; group C only the last.
    EXPECT_TRUE(r.procs[0].phases[0].has_value());
    EXPECT_TRUE(r.procs[0].phases[2].has_value());
    EXPECT_FALSE(r.procs[6].phases[0].has_value());
    EXPECT_FALSE(r.procs[6].phases[1].has_value());
    EXPECT_TRUE(r.procs[6].phases[2].has_value());
    // Series are sampled and monotone.
    for (const auto& pr : r.procs) {
        ASSERT_GE(pr.series.points.size(), 2u);
        for (std::size_t i = 1; i < pr.series.points.size(); ++i) {
            EXPECT_GE(pr.series.points[i].cumulative_cpu,
                      pr.series.points[i - 1].cumulative_cpu);
            EXPECT_GT(pr.series.points[i].when, pr.series.points[i - 1].when);
        }
    }
}

TEST(MultiAlpsExperiment, BadPhaseOrderViolatesContract) {
    MultiAlpsConfig cfg;
    cfg.phase2_start = util::sec(6);
    cfg.phase3_start = util::sec(3);
    EXPECT_THROW((void)run_multi_alps_experiment(cfg), util::ContractViolation);
}

}  // namespace
}  // namespace alps::workload
