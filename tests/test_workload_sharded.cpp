// The sharded-machine experiment's invariance contract: the same logical
// machine must produce bit-identical results at every shard count, in both
// run modes — the checksum digests per-process CPU and every cycle record.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "telemetry/recorder.h"
#include "util/assert.h"
#include "workload/sharded.h"

namespace alps::workload {
namespace {

using sim::ShardedEngine;

ShardedRunConfig small_config() {
    ShardedRunConfig cfg;
    cfg.groups = 4;
    cfg.procs_per_group = 3;
    cfg.measure_cycles = 8;
    cfg.warmup_cycles = 2;
    return cfg;
}

TEST(ShardedExperiment, CompletesAndExercisesCrossShardTraffic) {
    ShardedRunConfig cfg = small_config();
    cfg.shards = 2;
    const ShardedRunResult r = run_sharded_experiment(cfg);
    ASSERT_FALSE(r.timed_out);
    // >= : lockstep advances in whole-cycle chunks, so a group can finish
    // one extra cycle inside the final chunk.
    EXPECT_GE(r.cycles_completed, 4u * 10u);
    EXPECT_GT(r.epochs, 0u);
    EXPECT_GT(r.migrations_completed, 0u);          // the nomad hopped
    EXPECT_GT(r.cross_shard_messages, 0u);          // ... over the channels
    EXPECT_GT(r.board_machine_cpu.count(), 0);      // shard 0 saw all slices
    EXPECT_GT(r.events_fired, 0u);
    EXPECT_LT(r.mean_rms_error, 0.25);
    EXPECT_GT(r.overhead_fraction, 0.0);
}

TEST(ShardedExperiment, ChecksumInvariantAcrossShardCountsAndModes) {
    ShardedRunConfig cfg = small_config();
    cfg.shards = 1;
    cfg.mode = ShardedEngine::RunMode::kSerial;
    const ShardedRunResult baseline = run_sharded_experiment(cfg);
    ASSERT_FALSE(baseline.timed_out);

    for (const unsigned shards : {2u, 4u}) {
        for (const auto mode : {ShardedEngine::RunMode::kSerial,
                                ShardedEngine::RunMode::kThreaded}) {
            cfg.shards = shards;
            cfg.mode = mode;
            const ShardedRunResult r = run_sharded_experiment(cfg);
            ASSERT_FALSE(r.timed_out);
            EXPECT_EQ(r.consumed_checksum, baseline.consumed_checksum)
                << "shards=" << shards << " threaded="
                << (mode == ShardedEngine::RunMode::kThreaded);
            EXPECT_EQ(r.cycles_completed, baseline.cycles_completed);
            EXPECT_EQ(r.ticks, baseline.ticks);
            EXPECT_EQ(r.measurements, baseline.measurements);
            EXPECT_EQ(r.migrations_completed, baseline.migrations_completed);
            EXPECT_EQ(r.cross_shard_messages, baseline.cross_shard_messages);
            EXPECT_EQ(r.mean_rms_error, baseline.mean_rms_error);
            EXPECT_EQ(r.wall, baseline.wall);
        }
    }
}

TEST(ShardedExperiment, ChecksumSeparatesDifferentMachines) {
    ShardedRunConfig a = small_config();
    const ShardedRunResult ra = run_sharded_experiment(a);
    ShardedRunConfig b = small_config();
    b.policy_seed = a.policy_seed + 17;
    b.kernel_policy = "lottery";  // a seeded policy, so the seed matters
    const ShardedRunResult rb = run_sharded_experiment(b);
    EXPECT_NE(ra.consumed_checksum, rb.consumed_checksum);
}

// The per-shard telemetry merge: under the threaded mode every shard thread
// fills its own ring, and drain() folds them into one (scope, ts)-ordered
// stream — the epoch grid must come out whole and the hop instants must match
// the experiment's own migration count.
TEST(ShardedExperiment, ThreadedShardsMergeIntoOneTrace) {
    using namespace telemetry;
    Session session;
    attach(session);
    ShardedRunConfig cfg = small_config();
    cfg.shards = 2;
    cfg.mode = sim::ShardedEngine::RunMode::kThreaded;
    const ShardedRunResult r = run_sharded_experiment(cfg);
    detach();
    ASSERT_FALSE(r.timed_out);
    ASSERT_GT(r.migrations_completed, 0u);

    const std::vector<Record> records = session.drain();
    EXPECT_TRUE(std::is_sorted(records.begin(), records.end(),
                               [](const Record& a, const Record& b) {
                                   return a.scope != b.scope ? a.scope < b.scope
                                                             : a.ts_ns < b.ts_ns;
                               }));
    std::set<std::uint32_t> epoch_shards;
    std::uint64_t epochs = 0, hops = 0, last_epoch_ts = 0;
    bool epoch_grid_monotone_per_shard = true;
    std::vector<std::uint64_t> last_per_shard(cfg.shards, 0);
    for (const Record& rec : records) {
        if (rec.name == kNameEpoch) {
            ++epochs;
            epoch_shards.insert(rec.track);
            if (rec.track < cfg.shards) {
                if (rec.ts_ns < last_per_shard[rec.track]) {
                    epoch_grid_monotone_per_shard = false;
                }
                last_per_shard[rec.track] = rec.ts_ns;
            }
            last_epoch_ts = std::max(last_epoch_ts, rec.ts_ns);
        } else if (rec.name == kNameHop) {
            ++hops;
        }
    }
    // Every shard contributed its whole epoch grid (2 shards x r.epochs).
    EXPECT_EQ(epoch_shards.size(), cfg.shards);
    EXPECT_EQ(epochs, static_cast<std::uint64_t>(cfg.shards) * r.epochs);
    EXPECT_TRUE(epoch_grid_monotone_per_shard);
    EXPECT_GT(last_epoch_ts, 0u);
    EXPECT_EQ(hops, r.migrations_completed);
}

TEST(ShardedExperiment, HopsCanBeDisabled) {
    ShardedRunConfig cfg = small_config();
    cfg.shards = 2;
    cfg.hop_period = 0;
    const ShardedRunResult r = run_sharded_experiment(cfg);
    ASSERT_FALSE(r.timed_out);
    EXPECT_EQ(r.migrations_completed, 0u);
    EXPECT_EQ(r.cross_shard_messages, 0u);
}

}  // namespace
}  // namespace alps::workload
