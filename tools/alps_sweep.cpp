// alps-sweep — parallel experiment sweep runner.
//
//   alps-sweep --list
//   alps-sweep --list-policies
//   alps-sweep --experiment fig4 [--jobs N] [--seed S] [--full] [--out DIR]
//              [--no-json] [--quiet] [--kernel-policy NAME] [--ncpus N]
//              [--sites N] [--shards N] [--flash-crowd X]
//              [--isolate] [--run-timeout S] [--max-attempts N] [--journal]
//              [--resume] [--only-task I] [--json-payload-only]
//   alps-sweep --all [sweep flags]
//
// Runs registered experiments (see bench/experiments.h) across a thread pool
// and writes BENCH_<name>.json next to the paper-style text tables. Results
// are bit-identical for any --jobs value: every task derives its inputs from
// (sweep seed, task index) alone and the sink aggregates in task order; only
// the JSON's trailing "run" section (jobs, wall-clock, git sha) varies.
// Environment defaults: ALPS_BENCH_FULL=1, ALPS_BENCH_JOBS, ALPS_BENCH_JSON.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "../bench/experiments.h"
#include "harness/registry.h"
#include "harness/runner.h"
#include "os/policies/factory.h"

namespace {

void print_usage(std::ostream& out) {
    out << "usage: alps-sweep --experiment NAME [options]\n"
           "       alps-sweep --all [options]\n"
           "       alps-sweep --list\n"
           "       alps-sweep --list-policies\n"
           "options:\n"
           "  --jobs N     worker threads (default: hardware concurrency;\n"
           "               results are identical for every N)\n"
           "  --seed S     sweep seed; per-task seeds derive from (S, index)\n"
           "  --full       the paper's full-scale parameters\n"
           "  --out DIR    directory for BENCH_<name>.json (default: .)\n"
           "  --no-json    skip the JSON report\n"
           "  --quiet      no progress/ETA on stderr\n"
           "  --trace FILE record an .alpstrace of the sweep (forces --jobs 1\n"
           "               so same-seed traces are byte-identical; inspect\n"
           "               with alps-trace)\n"
           "  --kernel-policy NAME\n"
           "               kernel scheduling policy for experiments that honor\n"
           "               it (fig4: swaps the kernel under the whole figure;\n"
           "               policy_zoo: narrows the zoo to one row); see\n"
           "               --list-policies\n"
           "  --ncpus N    simulated core count for machine-size sweeps\n"
           "               (many_core, web_scale: runs only that grid column)\n"
           "  --sites N    hosted-site count for web_scale: runs only that\n"
           "               cluster size\n"
           "  --shards N   shard count for sharded-engine sweeps (sharded_run,\n"
           "               sim_perf's sharded point): runs only that count\n"
           "  --flash-crowd X\n"
           "               flash-crowd arrival multiplier for web_scale: runs\n"
           "               only points with that intensity (0 disables the\n"
           "               spike in the points it selects)\n"
           "supervision (see DESIGN.md §10):\n"
           "  --isolate    fork one worker process per task execution; crashes\n"
           "               and hangs are classified per task, retried, and\n"
           "               quarantined instead of killing the sweep\n"
           "  --run-timeout SECONDS\n"
           "               per-execution watchdog deadline (implies --isolate);\n"
           "               expiry SIGKILLs the worker and counts as a retry\n"
           "  --max-attempts N\n"
           "               executions per task before a crash/timeout\n"
           "               quarantines it (default 3)\n"
           "  --journal    append each finished task to BENCH_<name>.journal\n"
           "               (fsync'd, checksummed; survives kill -9)\n"
           "  --resume     skip tasks already completed in a matching journal;\n"
           "               the final JSON payload is byte-identical to an\n"
           "               uninterrupted run's\n"
           "  --only-task I\n"
           "               re-run exactly one task by sweep index with its\n"
           "               original seed (the forensics repro command)\n"
           "  --json-payload-only\n"
           "               omit the non-deterministic \"run\" section from the\n"
           "               JSON so interrupted+resumed and clean sweeps can be\n"
           "               byte-compared\n";
}

/// Renders the valid --kernel-policy values for error messages.
std::string known_policy_names() {
    std::string out;
    for (const auto& info : alps::os::policies::known_policies()) {
        if (!out.empty()) out += ", ";
        out += info.name;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace alps;
    bench::register_all_experiments();

    bool list = false;
    bool list_policies = false;
    bool all = false;
    std::vector<std::string> names;
    std::vector<char*> sweep_args{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            list = true;
        } else if (std::strcmp(argv[i], "--list-policies") == 0) {
            list_policies = true;
        } else if (std::strcmp(argv[i], "--all") == 0) {
            all = true;
        } else if (std::strcmp(argv[i], "--experiment") == 0) {
            if (i + 1 >= argc) {
                print_usage(std::cerr);
                return 2;
            }
            names.emplace_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            print_usage(std::cout);
            return 0;
        } else {
            sweep_args.push_back(argv[i]);
        }
    }

    if (list) {
        for (const harness::Experiment* e :
             harness::ExperimentRegistry::instance().list()) {
            std::cout << e->name << " — " << e->description << "\n";
        }
        return 0;
    }
    if (list_policies) {
        for (const auto& info : os::policies::known_policies()) {
            std::cout << info.name << " — " << info.description << "\n";
        }
        return 0;
    }
    if (all) {
        for (const harness::Experiment* e :
             harness::ExperimentRegistry::instance().list()) {
            names.push_back(e->name);
        }
    }
    if (names.empty()) {
        print_usage(std::cerr);
        return 2;
    }

    harness::SweepOptions options;
    options.out_dir = ".";
    if (!harness::parse_sweep_args(static_cast<int>(sweep_args.size()),
                                   sweep_args.data(), options)) {
        return 2;
    }
    // The kernel factory would throw the same complaint from inside every
    // task; checking here fails once, up front, with the valid names.
    // policy_zoo rows that are not kernel policy names are still legal
    // --kernel-policy values: the stride-engine A/Bs and "<policy>-percpu4".
    const auto is_zoo_row = [](const std::string& name) {
        if (name == "stride-engine" || name == "stride-engine-eager") return true;
        constexpr std::string_view suffix = "-percpu4";
        return name.size() > suffix.size() &&
               name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0 &&
               os::policies::is_known_policy(
                   name.substr(0, name.size() - suffix.size()));
    };
    if (!options.kernel_policy.empty() && !is_zoo_row(options.kernel_policy) &&
        !os::policies::is_known_policy(options.kernel_policy)) {
        std::cerr << "unknown kernel policy: " << options.kernel_policy
                  << "\nvalid policies: " << known_policy_names()
                  << " (see --list-policies)\n";
        return 2;
    }

    int worst = 0;
    for (const std::string& name : names) {
        std::cout << "=== " << name << " ===\n";
        try {
            worst = std::max(worst, harness::run_and_report(name, options));
        } catch (const std::invalid_argument& e) {
            // The kernel policy factory (or another constructor-level
            // validator) rejected its configuration inside a task. The
            // pre-check above catches the common case up front; this is the
            // backstop for experiments that construct kernels in ways the
            // pre-check cannot see.
            std::cerr << "error: " << e.what() << "\nvalid policies: "
                      << known_policy_names() << " (see --list-policies)\n";
            return 2;
        }
    }
    return worst;
}
