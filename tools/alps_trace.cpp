// alps-trace — inspect, validate, export, and compare .alpstrace recordings.
//
//   alps-trace inspect FILE [--limit N]   print records (human-readable)
//   alps-trace stats FILE                 per-scope/type/name summary
//   alps-trace verify FILE                semantic validation; exit 1 on problems
//   alps-trace export --chrome FILE [-o OUT.json]
//                                         Chrome trace_event JSON (load in
//                                         ui.perfetto.dev or chrome://tracing)
//   alps-trace diff FILE_A FILE_B         record-for-record comparison; exit 1
//                                         when the traces differ
//
// Traces come from `alps-sweep --trace FILE` (or any code using
// telemetry::Session + write_trace_file).
#include <algorithm>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "telemetry/chrome_export.h"
#include "telemetry/trace_file.h"

namespace {

using alps::telemetry::EventType;
using alps::telemetry::Record;
using alps::telemetry::TraceDiff;
using alps::telemetry::TraceFile;

void print_usage(std::ostream& out) {
    out << "usage: alps-trace inspect FILE [--limit N]\n"
           "       alps-trace stats FILE\n"
           "       alps-trace verify FILE\n"
           "       alps-trace export --chrome FILE [-o OUT.json]\n"
           "       alps-trace diff FILE_A FILE_B\n";
}

int cmd_inspect(const TraceFile& trace, std::size_t limit) {
    std::cout << "version " << trace.version << ", " << trace.records.size()
              << " records, " << trace.names.size() << " names, "
              << trace.dropped_records << " dropped during recording\n";
    std::size_t shown = 0;
    for (const Record& r : trace.records) {
        if (limit != 0 && shown >= limit) {
            std::cout << "... (" << trace.records.size() - shown << " more)\n";
            break;
        }
        std::cout << format_record(trace, r) << "\n";
        ++shown;
    }
    return 0;
}

int cmd_stats(const TraceFile& trace) {
    std::map<std::uint32_t, std::uint64_t> per_scope;
    std::map<std::string, std::uint64_t> per_kind;  // "type name" keys
    std::uint64_t ts_min = ~std::uint64_t{0};
    std::uint64_t ts_max = 0;
    for (const Record& r : trace.records) {
        ++per_scope[r.scope];
        std::string kind;
        switch (static_cast<EventType>(r.type)) {
            case EventType::kSpanBegin: kind = "span_begin "; break;
            case EventType::kSpanEnd: kind = "span_end "; break;
            case EventType::kInstant: kind = "instant "; break;
            case EventType::kCounter: kind = "counter "; break;
            default: kind = "unknown "; break;
        }
        kind += r.name < trace.names.size() ? trace.names[r.name]
                                            : "name#" + std::to_string(r.name);
        ++per_kind[kind];
        ts_min = std::min(ts_min, r.ts_ns);
        ts_max = std::max(ts_max, r.ts_ns);
    }
    std::cout << "records:          " << trace.records.size() << "\n";
    std::cout << "dropped:          " << trace.dropped_records << "\n";
    std::cout << "names:            " << trace.names.size() << "\n";
    std::cout << "scopes:           " << per_scope.size() << "\n";
    if (!trace.records.empty()) {
        std::cout << "time range:       " << ts_min << " .. " << ts_max << " ns ("
                  << static_cast<double>(ts_max - ts_min) / 1e9 << " s simulated)\n";
    }
    std::cout << "by event kind:\n";
    for (const auto& [kind, count] : per_kind) {
        std::cout << "  " << kind << ": " << count << "\n";
    }
    return 0;
}

int cmd_verify(const std::string& path) {
    TraceFile trace;
    try {
        trace = alps::telemetry::read_trace_file(path);
    } catch (const std::exception& e) {
        std::cerr << "structurally invalid: " << e.what() << "\n";
        return 1;
    }
    const std::vector<std::string> problems = alps::telemetry::verify_trace(trace);
    if (problems.empty()) {
        std::cout << path << ": OK (" << trace.records.size() << " records, "
                  << trace.dropped_records << " dropped)\n";
        return 0;
    }
    for (const std::string& p : problems) std::cerr << path << ": " << p << "\n";
    std::cerr << problems.size() << " problem(s)\n";
    return 1;
}

int cmd_export_chrome(const TraceFile& trace, const std::string& out_path) {
    const std::string json = alps::telemetry::to_chrome_trace(trace).dump(0);
    if (out_path.empty() || out_path == "-") {
        std::cout << json << "\n";
        return 0;
    }
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    out << json << "\n";
    std::cout << "wrote " << out_path << " (open in ui.perfetto.dev)\n";
    return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
    const TraceFile a = alps::telemetry::read_trace_file(path_a);
    const TraceFile b = alps::telemetry::read_trace_file(path_b);
    const TraceDiff d = alps::telemetry::diff_traces(a, b);
    if (d.identical()) {
        std::cout << "identical (" << a.records.size() << " records)\n";
        return 0;
    }
    for (const std::string& line : d.details) std::cout << line << "\n";
    std::cout << d.differing_records << " differing record(s)\n";
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        print_usage(std::cerr);
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "--help" || cmd == "-h") {
            print_usage(std::cout);
            return 0;
        }
        if (cmd == "inspect") {
            std::string path;
            std::size_t limit = 40;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
                    limit = std::strtoull(argv[++i], nullptr, 10);
                } else if (path.empty()) {
                    path = argv[i];
                } else {
                    print_usage(std::cerr);
                    return 2;
                }
            }
            if (path.empty()) {
                print_usage(std::cerr);
                return 2;
            }
            return cmd_inspect(alps::telemetry::read_trace_file(path), limit);
        }
        if (cmd == "stats" && argc == 3) {
            return cmd_stats(alps::telemetry::read_trace_file(argv[2]));
        }
        if (cmd == "verify" && argc == 3) {
            return cmd_verify(argv[2]);
        }
        if (cmd == "export") {
            bool chrome = false;
            std::string path;
            std::string out_path;
            for (int i = 2; i < argc; ++i) {
                if (std::strcmp(argv[i], "--chrome") == 0) {
                    chrome = true;
                } else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
                    out_path = argv[++i];
                } else if (path.empty()) {
                    path = argv[i];
                } else {
                    print_usage(std::cerr);
                    return 2;
                }
            }
            if (!chrome || path.empty()) {
                std::cerr << "export requires --chrome and a FILE\n";
                return 2;
            }
            return cmd_export_chrome(alps::telemetry::read_trace_file(path), out_path);
        }
        if (cmd == "diff" && argc == 4) {
            return cmd_diff(argv[2], argv[3]);
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    print_usage(std::cerr);
    return 2;
}
