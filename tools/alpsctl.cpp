// alpsctl — command-line ALPS for real processes.
//
// Give existing pids (or whole user accounts) proportional CPU shares from a
// terminal, no privileges required beyond the right to signal the targets:
//
//   alpsctl --duration 30 1234=3 5678=1
//       schedule pid 1234 and pid 5678 at shares 3:1 for 30 seconds
//
//   alpsctl --quantum 20ms --duration 60 --user alice=1 --user bob=3
//       group-principal mode: all of alice's processes vs all of bob's
//       (memberships refresh once per second, as in the paper's Section 5)
//
// Options:
//   --quantum <N>[ms]   ALPS quantum (default 10 ms)
//   --duration <N>[s]   run time (default 10 s); Ctrl-C stops early and
//                       resumes every managed process
//   --user NAME=SHARE   schedule a user's whole process set (repeatable;
//                       NAME may be a numeric uid)
//   PID=SHARE           schedule one process (repeatable)
//   --eager             disable the lazy-measurement optimization
//   --quiet             suppress the end-of-run report
#include <pwd.h>
#include <signal.h>

#include <iostream>

#include "posix/cli.h"
#include "posix/host.h"
#include "posix/runner.h"
#include "util/table.h"

namespace {

using namespace alps;
using posix::cli::Options;
using posix::cli::Target;

std::optional<core::HostUid> getpwnam_lookup(const std::string& name) {
    if (const passwd* pw = ::getpwnam(name.c_str())) {
        return static_cast<core::HostUid>(pw->pw_uid);
    }
    return std::nullopt;
}

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--quantum <N>ms] [--duration <N>] [--eager] [--quiet]\n"
                 "       [--user NAME=SHARE]... [PID=SHARE]...\n";
    return 2;
}

void (*g_request_stop)() = nullptr;
void on_sigint(int) {
    if (g_request_stop != nullptr) g_request_stop();
}

int run_pid_mode(const Options& opt) {
    core::SchedulerConfig cfg;
    cfg.quantum = opt.quantum;
    cfg.lazy_measurement = opt.lazy;
    posix::PosixAlpsRunner runner(cfg);
    posix::PosixProcessHost host;

    std::vector<util::Duration> before;
    for (const Target& t : opt.pid_targets) {
        const core::Sample s = host.read_pid(t.pid);
        if (!s.alive) {
            std::cerr << "alpsctl: no such process: " << t.pid << "\n";
            return 1;
        }
        before.push_back(s.cpu_time);
        runner.scheduler().add(t.pid, t.share);
    }

    static posix::PosixAlpsRunner* runner_ptr = nullptr;
    runner_ptr = &runner;
    g_request_stop = [] { runner_ptr->request_stop(); };
    ::signal(SIGINT, on_sigint);

    const posix::RunTotals totals = runner.run_for(opt.duration);
    if (opt.quiet) return 0;

    util::TextTable table({"pid", "share", "target %", "received %", "cpu (s)"});
    util::Share total_share = 0;
    double total_cpu = 0.0;
    std::vector<double> consumed;
    for (std::size_t i = 0; i < opt.pid_targets.size(); ++i) {
        total_share += opt.pid_targets[i].share;
        const core::Sample s = host.read_pid(opt.pid_targets[i].pid);
        consumed.push_back(s.alive ? util::to_sec(s.cpu_time - before[i]) : 0.0);
        total_cpu += consumed.back();
    }
    for (std::size_t i = 0; i < opt.pid_targets.size(); ++i) {
        const Target& t = opt.pid_targets[i];
        table.add_row(
            {t.name, std::to_string(t.share),
             util::fmt(100.0 * static_cast<double>(t.share) /
                           static_cast<double>(total_share),
                       1),
             util::fmt(total_cpu > 0 ? 100.0 * consumed[i] / total_cpu : 0.0, 1),
             util::fmt(consumed[i], 2)});
    }
    table.print(std::cout);
    std::cout << "ticks " << totals.ticks << ", alpsctl overhead "
              << util::fmt(100.0 * totals.overhead_fraction, 3) << "% of one CPU\n";
    return 0;
}

int run_user_mode(const Options& opt) {
    core::SchedulerConfig cfg;
    cfg.quantum = opt.quantum;
    cfg.lazy_measurement = opt.lazy;
    posix::PosixGroupAlpsRunner runner(cfg);
    for (const Target& t : opt.user_targets) {
        runner.manage_user(t.name, t.uid, t.share);
    }

    static posix::PosixGroupAlpsRunner* runner_ptr = nullptr;
    runner_ptr = &runner;
    g_request_stop = [] { runner_ptr->request_stop(); };
    ::signal(SIGINT, on_sigint);

    const posix::RunTotals totals = runner.run_for(opt.duration);
    if (!opt.quiet) {
        std::cout << "scheduled " << opt.user_targets.size() << " user principals for "
                  << util::fmt(util::to_sec(totals.wall), 1) << " s; overhead "
                  << util::fmt(100.0 * totals.overhead_fraction, 3)
                  << "% of one CPU\n";
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = posix::cli::parse_args(argc, argv, getpwnam_lookup);
    if (!opt) return usage(argv[0]);
    return opt->user_targets.empty() ? run_pid_mode(*opt) : run_user_mode(*opt);
}
